package core

import (
	"continustreaming/internal/bandwidth"
	"continustreaming/internal/buffer"
	"continustreaming/internal/dht"
	"continustreaming/internal/overlay"
	"continustreaming/internal/prefetch"
	"continustreaming/internal/scheduler"
	"continustreaming/internal/segment"
	"continustreaming/internal/sim"
)

// Node is one overlay peer: the software architecture of Figure 1 — P2P
// Overlay Manager (PeerTable), Data Scheduler (policy), Buffer, Rate
// Controller, and VoD Data Backup — plus the simulation-side bookkeeping
// (pending requests, arrival timestamps) a real implementation would keep
// in its transport layer.
type Node struct {
	// ID is the node's overlay identifier and its DHT ring position.
	ID overlay.NodeID
	// Gen is the assignment generation of this ring ID (0 = first use).
	// It salts the ID-keyed random streams so a recycled slot never
	// replays its dead predecessor's randomness.
	Gen uint64
	// IsSource marks the single media source.
	IsSource bool
	// Rates is the node's access capacity.
	Rates bandwidth.Rates
	// Ping is the node's trace ping time; pairwise latency derives from
	// ping differences (§5.2).
	Ping sim.Time
	// Table is the Peer Table (connected neighbours + DHT peers +
	// overheard nodes).
	Table *overlay.PeerTable
	// Buf is the sliding segment buffer.
	Buf *buffer.Buffer
	// Ctrl estimates per-neighbour receiving rates.
	Ctrl *bandwidth.Controller
	// Alpha adapts the urgent ratio; Tags tracks pre-fetched segments for
	// repeated-data detection. Both are nil for profiles without
	// pre-fetch.
	Alpha *prefetch.Alpha
	Tags  *prefetch.Tags
	// Backup is the node's VoD Data Backup store.
	Backup *dht.Store
	// RNG is the node's private randomness stream.
	RNG *sim.RNG
	// Policy is the node's scheduling discipline.
	Policy scheduler.Policy

	// Started reports whether playback has begun (§5.2: the system ramps
	// up as nodes buffer enough to start; new joiners follow their
	// neighbours' current position).
	Started bool
	// StartedRound records when playback began, for diagnostics.
	StartedRound int
	// JoinedRound records when the node entered the overlay (-1 for the
	// initial population, which is warm by construction). Nodes within
	// Config.WarmupRounds of joining are excluded from the warm
	// continuity metric.
	JoinedRound int

	// pendingGossip maps requested-but-not-yet-arrived segment IDs to
	// their request state (timeout round + expected arrival, used by the
	// Urgent Line to decide whether a scheduled transfer will make its
	// deadline).
	pendingGossip map[segment.ID]pendingRequest
	// pendingPrefetch maps in-flight pre-fetches to their expiry round.
	pendingPrefetch map[segment.ID]int
	// arrivedAt records delivery timestamps for deadline checks.
	arrivedAt map[segment.ID]sim.Time

	// overdue / repeated accumulate this round's α feedback.
	overdue  int
	repeated int
	// pushReceived counts segments that arrived on this node's inbound
	// link via the eager push phase this round; the pull scheduler's
	// budget shrinks by it, so push and pull share the inbound rate the
	// same way pre-fetch and pull share it on the outbound side.
	pushReceived int
	// lastReplace is the most recent round in which this node swapped a
	// low-supply neighbour, enforcing the replacement cooldown.
	lastReplace int
	// missedLastRound records whether the previous round's playback was
	// discontinuous; only struggling nodes rewire low-supply neighbours.
	missedLastRound bool
	// missStreak counts consecutive discontinuous rounds; two or more is
	// playback distress, which unlocks multi-replacement in maintenance.
	missStreak int
}

// pendingRequest records one outstanding gossip ask.
type pendingRequest struct {
	expiry     int      // round after which the node retries
	expectedAt sim.Time // absolute expected completion time
}

// pendingExpiryRounds is how many rounds a request stays pending before the
// node gives up and becomes willing to re-request the segment.
const pendingExpiryRounds = 2

// initState allocates the maps shared by all constructors.
func (n *Node) initState() {
	n.pendingGossip = make(map[segment.ID]pendingRequest)
	n.pendingPrefetch = make(map[segment.ID]int)
	n.arrivedAt = make(map[segment.ID]sim.Time)
}

// Fresh reports whether the node should consider fetching id: absent from
// the buffer and not pending on either path.
func (n *Node) Fresh(id segment.ID, round int) bool {
	if n.Buf.Has(id) {
		return false
	}
	if p, ok := n.pendingGossip[id]; ok && p.expiry > round {
		return false
	}
	if exp, ok := n.pendingPrefetch[id]; ok && exp > round {
		return false
	}
	return true
}

// markGossipPending records a scheduled request with its expected arrival.
func (n *Node) markGossipPending(id segment.ID, round int, expectedAt sim.Time) {
	n.pendingGossip[id] = pendingRequest{expiry: round + pendingExpiryRounds, expectedAt: expectedAt}
}

// predictExcluded reports whether the Urgent Line should skip id: a
// pre-fetch is already in flight, or a gossip request exists whose
// expected arrival is still in the future AND beats the segment's
// deadline. A scheduled transfer that will land too late — or whose
// expected arrival has already passed without the segment showing up
// (dropped at an overloaded supplier) — is NOT excluded: those are
// precisely the segments "likely to be missed by the data scheduling
// algorithm".
func (n *Node) predictExcluded(id segment.ID, round int, now, deadline sim.Time) bool {
	if n.prefetchInFlight(id, round) {
		return true
	}
	p, ok := n.pendingGossip[id]
	return ok && p.expiry > round && p.expectedAt >= now && p.expectedAt <= deadline
}

// markPrefetchPending records an in-flight pre-fetch and tags the segment.
func (n *Node) markPrefetchPending(id segment.ID, round int) {
	n.pendingPrefetch[id] = round + pendingExpiryRounds
	n.Tags.Mark(id)
}

// prefetchInFlight reports whether id has an unexpired pre-fetch pending.
func (n *Node) prefetchInFlight(id segment.ID, round int) bool {
	exp, ok := n.pendingPrefetch[id]
	return ok && exp > round
}

// receive ingests a delivered segment at time at. It returns true when the
// segment was newly stored (false for duplicates or out-of-window
// arrivals). The caller handles accounting.
func (n *Node) receive(id segment.ID, at sim.Time) bool {
	delete(n.pendingGossip, id)
	delete(n.pendingPrefetch, id)
	if !n.Buf.Insert(id) {
		return false
	}
	if _, ok := n.arrivedAt[id]; !ok {
		n.arrivedAt[id] = at
	}
	return true
}

// pruneBelow drops all per-segment state older than floor.
func (n *Node) pruneBelow(floor segment.ID) {
	for id := range n.arrivedAt {
		if id < floor {
			delete(n.arrivedAt, id)
		}
	}
	for id := range n.pendingGossip {
		if id < floor {
			delete(n.pendingGossip, id)
		}
	}
	for id := range n.pendingPrefetch {
		if id < floor {
			delete(n.pendingPrefetch, id)
		}
	}
	if n.Tags != nil {
		n.Tags.PruneBelow(floor)
	}
	n.Backup.PruneBelow(floor)
}

// expirePending clears request records whose expiry round has passed so
// the node retries them.
func (n *Node) expirePending(round int) {
	for id, p := range n.pendingGossip {
		if p.expiry <= round {
			delete(n.pendingGossip, id)
		}
	}
	for id, exp := range n.pendingPrefetch {
		if exp <= round {
			delete(n.pendingPrefetch, id)
		}
	}
}

// arrivedInTime reports whether id is buffered and arrived at or before
// deadline.
func (n *Node) arrivedInTime(id segment.ID, deadline sim.Time) bool {
	if !n.Buf.Has(id) {
		return false
	}
	at, ok := n.arrivedAt[id]
	// Segments with no recorded arrival were present before tracking
	// (source-generated); treat as in time.
	return !ok || at <= deadline
}

// believedSuccessor returns the node's view of its clockwise successor —
// the n1 bounding its backup arc (§4.3). Without any DHT peer the node
// cannot delimit an arc and backs up nothing.
func (n *Node) believedSuccessor() (dht.ID, bool) {
	return n.Table.DHT().Successor()
}

// maybeBackup stores id in the VoD backup when the hash rule makes this
// node responsible for it.
func (n *Node) maybeBackup(space dht.Space, id segment.ID, replicas int) {
	succ, ok := n.believedSuccessor()
	if !ok {
		return
	}
	if dht.Responsible(space, dht.ID(n.ID), succ, id, replicas) {
		n.Backup.Put(id)
	}
}
