package core

import (
	"reflect"
	"testing"

	"continustreaming/internal/buffer"
	"continustreaming/internal/churn"
	"continustreaming/internal/overlay"
	"continustreaming/internal/segment"
	"continustreaming/internal/sim"
)

// serveFixture builds a world plus the snapshot/index context
// serveSupplier needs, and picks a non-source supplier.
func serveFixture(t *testing.T, workers int) (*World, overlay.NodeID, []buffer.Map, []int32) {
	t.Helper()
	cfg := smallConfig(30, ProfileContinuStreaming())
	cfg.Workers = workers
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sup overlay.NodeID = -1
	for _, id := range w.Nodes() {
		if id != w.Source() && len(w.neighborsOf(id)) > 0 {
			sup = id
			break
		}
	}
	if sup < 0 {
		t.Fatal("no usable supplier")
	}
	snaps := make([]buffer.Map, len(w.Nodes()))
	index := w.buildIndex()
	for i, id := range w.Nodes() {
		snaps[i] = w.Node(id).Buf.Snapshot()
	}
	return w, sup, snaps, index
}

// TestSupplierServesEarliestDeadlineFirst pins the engine's service
// discipline on a contended supplier: with more asks than outbound
// capacity, the earliest-deadline requests are granted (in deadline
// order) and equal deadlines break toward the segment that is rarest in
// the supplier's own neighbourhood — identically at any Workers setting,
// since the serve path is shard-owned and worker-free.
func TestSupplierServesEarliestDeadlineFirst(t *testing.T) {
	var first []segment.ID
	for _, workers := range []int{1, 4} {
		w, sup, snaps, index := serveFixture(t, workers)
		sn := w.Node(sup)
		sn.Rates.Out = 1 // capacity 2 with backlog spill
		pos := segment.ID(100)
		p := w.cfg.Stream.Rate
		// Six contending requesters asking for segments at increasing
		// deadlines (ids 1, 2, 3 rounds ahead of pos).
		var fresh []transferReq
		for i, id := range []segment.ID{pos + 25, pos + 15, pos + 35, pos + 12, pos + 22, pos + 32} {
			fresh = append(fresh, transferReq{
				supplier:  sup,
				requester: w.Nodes()[i],
				id:        id,
			})
		}
		res := w.serveSupplier(&roundArena{}, w.shardOf(sup), sup, fresh, snaps, index, 0, sim.Time(w.cfg.Tau), pos, p)
		if len(res.Granted) != 2 {
			t.Fatalf("granted %d, want capacity 2", len(res.Granted))
		}
		got := []segment.ID{res.Granted[0].ID, res.Granted[1].ID}
		// The two earliest-deadline segments are the ids one round ahead
		// (pos+12, pos+15), in requester/ID-deterministic order.
		for _, id := range got {
			if id != pos+12 && id != pos+15 {
				t.Fatalf("granted %v, want the round-ahead segments {112, 115}", got)
			}
		}
		// Ungranted round-ahead work is deadline-evicted (it cannot be
		// served next round in time); the rest queues up to QueueFactor·O.
		if res.Evicted.Total()+int64(len(res.Queued)) != 4 {
			t.Fatalf("evicted %d + queued %d, want the 4 ungranted asks", res.Evicted.Total(), len(res.Queued))
		}
		if workers == 1 {
			first = got
		} else if !reflect.DeepEqual(first, got) {
			t.Fatalf("serve order differs across workers: %v vs %v", first, got)
		}
	}
}

// TestSupplierBreaksDeadlineTiesByRarity pins the tie-break: two
// requests due the same round, one for a segment every supplier
// neighbour advertises, one for a segment none do — the rare segment
// must win the single grant slot.
func TestSupplierBreaksDeadlineTiesByRarity(t *testing.T) {
	w, sup, _, index := serveFixture(t, 1)
	sn := w.Node(sup)
	sn.Rates.Out = 1
	pos := segment.ID(0)
	p := w.cfg.Stream.Rate
	common, rare := pos+2, pos+3 // same round => same deadline
	// Rebuild snapshots with every neighbour of sup advertising the
	// common segment.
	for _, nb := range w.neighborsOf(sup) {
		w.Node(nb).Buf.Insert(common)
	}
	snaps := make([]buffer.Map, len(w.Nodes()))
	for i, id := range w.Nodes() {
		snaps[i] = w.Node(id).Buf.Snapshot()
	}
	fresh := []transferReq{
		{supplier: sup, requester: w.Nodes()[0], id: common},
		{supplier: sup, requester: w.Nodes()[1], id: rare},
	}
	// Capacity 1: only the spill-adjusted single slot. Force it by
	// charging one push send against the supplier.
	w.dissem.ChargePush(w.shardOf(sup), sup, 1)
	res := w.serveSupplier(&roundArena{}, w.shardOf(sup), sup, fresh, snaps, index, 0, sim.Time(w.cfg.Tau), pos, p)
	if len(res.Granted) != 1 || res.Granted[0].ID != rare {
		t.Fatalf("granted %+v, want the rare segment %d first", res.Granted, rare)
	}
}

// TestQueueCarriesUnservedRequests pins the outbound queueing contract:
// overload beyond the backlog horizon is carried (earliest deadlines
// first) and served from the queue on the next call, rather than dropped.
func TestQueueCarriesUnservedRequests(t *testing.T) {
	w, sup, snaps, index := serveFixture(t, 1)
	sn := w.Node(sup)
	sn.Rates.Out = 1
	pos := segment.ID(0)
	p := w.cfg.Stream.Rate
	// Far-future deadlines so nothing is deadline-evicted; supplier must
	// hold the segments for the carried entries to survive revalidation.
	var fresh []transferReq
	for i := 0; i < 5; i++ {
		id := pos + segment.ID(40+i)
		sn.Buf.Insert(id)
		fresh = append(fresh, transferReq{supplier: sup, requester: w.Nodes()[i], id: id})
	}
	shard := w.shardOf(sup)
	res := w.serveSupplier(&roundArena{}, shard, sup, fresh, snaps, index, 0, sim.Time(w.cfg.Tau), pos, p)
	if len(res.Granted) != 2 {
		t.Fatalf("granted %d, want 2", len(res.Granted))
	}
	if qn := w.dissem.QueueLen(shard, sup); qn != 2 { // QueueFactor 2 × Out 1
		t.Fatalf("queued %d, want QueueFactor·O = 2", qn)
	}
	if res.Evicted.Overflow != 1 {
		t.Fatalf("overflow evictions = %d, want 1", res.Evicted.Overflow)
	}
	// Next round: no fresh asks; the carried pair is served first.
	res2 := w.serveSupplier(&roundArena{}, shard, sup, nil, snaps, index, sim.Time(w.cfg.Tau), 2*sim.Time(w.cfg.Tau), pos, p)
	if len(res2.Granted) != 2 || !res2.Granted[0].Carried || !res2.Granted[1].Carried {
		t.Fatalf("carried requests not served next round: %+v", res2.Granted)
	}
	if w.dissem.QueueLen(shard, sup) != 0 {
		t.Fatal("queue not drained")
	}
}

// TestPushSeedsFreshSegments pins the push phase end to end: an engine
// profile records push deliveries from round one, the duplicates stay a
// modest fraction, and the baseline profile never pushes.
func TestPushSeedsFreshSegments(t *testing.T) {
	cfg := smallConfig(100, ProfileContinuStreaming())
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.NewEngine(w, cfg.Tau).Run(10)
	tot := w.Collector().Totals()
	if tot.PushDeliveries == 0 {
		t.Fatal("engine profile recorded no push deliveries")
	}
	if tot.PushDuplicates > tot.PushDeliveries {
		t.Fatalf("push duplicates (%d) exceed deliveries (%d): the planner is spraying blindly",
			tot.PushDuplicates, tot.PushDeliveries)
	}
	cool, err := NewWorld(smallConfig(100, ProfileCoolStreaming()))
	if err != nil {
		t.Fatal(err)
	}
	sim.NewEngine(cool, cfg.Tau).Run(10)
	if ct := cool.Collector().Totals(); ct.PushDeliveries != 0 || ct.QueueServed != 0 {
		t.Fatalf("baseline used the engine: push=%d queueServed=%d", ct.PushDeliveries, ct.QueueServed)
	}
}

// TestWarmContinuityExcludesFreshJoiners pins the ContinuityWarm metric:
// under churn the warm variant tracks at or above the plain metric up to
// a small tolerance (it removes fresh joiners — who almost never play
// continuously — from both numerator and denominator; a joiner that
// catches up instantly can nudge it fractionally below) and its
// denominator must stay below the full population once joins happen.
func TestWarmContinuityExcludesFreshJoiners(t *testing.T) {
	cfg := smallConfig(150, ProfileContinuStreaming())
	cfg.Churn = churn.DefaultConfig()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.NewEngine(w, cfg.Tau).Run(20)
	samples := w.Collector().Samples()
	sawExclusion := false
	for _, s := range samples[10:] {
		if s.WarmNodes > s.PlayingNodes {
			t.Fatalf("warm denominator %d exceeds population %d", s.WarmNodes, s.PlayingNodes)
		}
		if s.WarmNodes < s.PlayingNodes {
			sawExclusion = true
		}
		if s.ContinuityWarm()+0.02 < s.Continuity() {
			t.Fatalf("round %d: warm continuity %.4f well below plain %.4f",
				s.Round, s.ContinuityWarm(), s.Continuity())
		}
	}
	if !sawExclusion {
		t.Fatal("20 churn rounds never excluded a fresh joiner")
	}
}
