package core
