package bandwidth

// Controller is the node's Rate Controller (Figure 1): it "monitors and
// estimates the receiving rate from each connected neighbor". It keeps two
// estimates per neighbour, because two different consumers need different
// signals:
//
//   - Rate (R_ij, segments/s) is the *service rate* observed during active
//     transfers — segments delivered divided by the elapsed transfer window
//     — which feeds the urgency term 1/R_i and Algorithm 1's expected
//     transfer times. Estimating from timestamps rather than per-period
//     counts matters: a neighbour asked for 2 segments that arrive within
//     300 ms is a fast supplier, not a 2-segments-per-second one.
//   - Supply (segments/period, long-run EWMA) measures how much the
//     neighbour actually contributes, which drives the §4.1 replacement of
//     neighbours that "supplied little data".
//
// Rounds in which nothing was requested from a neighbour leave its service
// estimate drifting gently back toward the optimistic prior, so a
// temporarily overloaded supplier is retried rather than written off
// forever.
type Controller struct {
	alpha float64 // EWMA weight on the newest observation
	prior float64 // service-rate prior for unknown neighbours (segments/s)

	service map[int]float64
	supply  map[int]float64

	// Per-period scratch, folded in by Tick.
	requested map[int]int
	delivered map[int]int
	lastAt    map[int]float64 // latest arrival offset in seconds
}

// minObservationWindow guards the service-rate division: arrivals inside
// the first 100 ms of a period measure at most rate = count/0.1.
const minObservationWindow = 0.1

// serviceFloor keeps estimates strictly positive so expected transfer
// times stay finite.
const serviceFloor = 0.05

// NewController returns a controller with the given EWMA weight and
// service-rate prior (segments per second). alpha is clamped into (0, 1].
func NewController(alpha, prior float64) *Controller {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if prior <= 0 {
		prior = 1
	}
	return &Controller{
		alpha:     alpha,
		prior:     prior,
		service:   make(map[int]float64),
		supply:    make(map[int]float64),
		requested: make(map[int]int),
		delivered: make(map[int]int),
		lastAt:    make(map[int]float64),
	}
}

// NoteRequested records that `count` segments were requested from
// neighbour id this period.
func (c *Controller) NoteRequested(id, count int) {
	if count > 0 {
		c.requested[id] += count
	}
}

// ObserveDelivery records one segment arriving from neighbour id at offset
// seconds into the period.
func (c *Controller) ObserveDelivery(id int, offsetSeconds float64) {
	c.delivered[id]++
	if offsetSeconds > c.lastAt[id] {
		c.lastAt[id] = offsetSeconds
	}
}

// Tick folds the period's observations into the running estimates.
func (c *Controller) Tick() {
	// Service rate: only neighbours we exercised this period carry signal.
	for id := range c.requested {
		got := c.delivered[id]
		cur, known := c.service[id]
		if !known {
			cur = c.prior
		}
		var obs float64
		if got > 0 {
			window := c.lastAt[id]
			if window < minObservationWindow {
				window = minObservationWindow
			}
			obs = float64(got) / window
		} else {
			// Requested but nothing came: the supplier failed us.
			obs = 0
		}
		next := (1-c.alpha)*cur + c.alpha*obs
		if next < serviceFloor {
			next = serviceFloor
		}
		c.service[id] = next
	}
	// Idle neighbours drift back toward the prior so they get retried.
	for id, cur := range c.service {
		if c.requested[id] == 0 && c.delivered[id] == 0 {
			c.service[id] = cur + 0.1*(c.prior-cur)
		}
	}
	// Long-run supply decays for everyone and credits actual deliveries.
	for id := range c.supply {
		c.supply[id] = (1 - c.alpha) * c.supply[id]
	}
	for id, got := range c.delivered {
		c.supply[id] += c.alpha * float64(got)
	}
	clear(c.requested)
	clear(c.delivered)
	clear(c.lastAt)
}

// Rate returns the estimated service rate from neighbour id in segments
// per second; unknown neighbours get the optimistic prior.
func (c *Controller) Rate(id int) float64 {
	if r, ok := c.service[id]; ok {
		return r
	}
	return c.prior
}

// Supply returns the long-run per-period supply estimate for id (0 for
// unknown neighbours).
func (c *Controller) Supply(id int) float64 { return c.supply[id] }

// Known reports whether the controller has ever exercised neighbour id.
func (c *Controller) Known(id int) bool {
	_, ok := c.service[id]
	return ok
}

// Forget removes all state about a departed neighbour.
func (c *Controller) Forget(id int) {
	delete(c.service, id)
	delete(c.supply, id)
	delete(c.requested, id)
	delete(c.delivered, id)
	delete(c.lastAt, id)
}
