package bandwidth

// Controller is the node's Rate Controller (Figure 1): it "monitors and
// estimates the receiving rate from each connected neighbor". It keeps two
// estimates per neighbour, because two different consumers need different
// signals:
//
//   - Rate (R_ij, segments/s) is the *service rate* observed during active
//     transfers — segments delivered divided by the elapsed transfer window
//     — which feeds the urgency term 1/R_i and Algorithm 1's expected
//     transfer times. Estimating from timestamps rather than per-period
//     counts matters: a neighbour asked for 2 segments that arrive within
//     300 ms is a fast supplier, not a 2-segments-per-second one.
//   - Supply (segments/period, long-run EWMA) measures how much the
//     neighbour actually contributes, which drives the §4.1 replacement of
//     neighbours that "supplied little data".
//
// Rounds in which nothing was requested from a neighbour leave its service
// estimate drifting gently back toward the optimistic prior, so a
// temporarily overloaded supplier is retried rather than written off
// forever.
//
// State lives in one id-sorted slice — a node tracks a handful of
// neighbours, so the binary-searched lookups that the hot scheduling path
// issues per neighbour cost a few compares instead of a map hash, and Tick
// is one linear pass with no per-key map traffic. Every per-neighbour
// update is independent of the others, so folding the retired per-map
// loops into that single pass leaves each estimate's float operation
// sequence — and therefore every result — bit-identical.
type Controller struct {
	alpha float64 // EWMA weight on the newest observation
	prior float64 // service-rate prior for unknown neighbours (segments/s)

	stats []neighbourStats // sorted by id
}

// neighbourStats folds one neighbour's running estimates and per-period
// scratch. hasService/hasSupply mirror the retired maps' key presence:
// service is meaningful (and the neighbour "known") only after a period
// that requested from it, supply only after a delivery credited it.
type neighbourStats struct {
	id         int
	service    float64
	supply     float64
	lastAt     float64 // latest arrival offset in seconds, this period
	requested  int32
	delivered  int32
	hasService bool
	hasSupply  bool
}

// minObservationWindow guards the service-rate division: arrivals inside
// the first 100 ms of a period measure at most rate = count/0.1.
const minObservationWindow = 0.1

// serviceFloor keeps estimates strictly positive so expected transfer
// times stay finite.
const serviceFloor = 0.05

// NewController returns a controller with the given EWMA weight and
// service-rate prior (segments per second). alpha is clamped into (0, 1].
func NewController(alpha, prior float64) *Controller {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if prior <= 0 {
		prior = 1
	}
	return &Controller{alpha: alpha, prior: prior}
}

// find returns the index of id in stats, or the insertion point if absent.
func (c *Controller) find(id int) int {
	lo, hi := 0, len(c.stats)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.stats[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// entry returns the stats for id, inserting a zero entry if absent. The
// pointer is valid until the next insertion or removal.
func (c *Controller) entry(id int) *neighbourStats {
	i := c.find(id)
	if i < len(c.stats) && c.stats[i].id == id {
		return &c.stats[i]
	}
	c.stats = append(c.stats, neighbourStats{})
	copy(c.stats[i+1:], c.stats[i:])
	c.stats[i] = neighbourStats{id: id}
	return &c.stats[i]
}

// NoteRequested records that `count` segments were requested from
// neighbour id this period.
func (c *Controller) NoteRequested(id, count int) {
	if count > 0 {
		c.entry(id).requested += int32(count)
	}
}

// ObserveDelivery records one segment arriving from neighbour id at offset
// seconds into the period.
func (c *Controller) ObserveDelivery(id int, offsetSeconds float64) {
	e := c.entry(id)
	e.delivered++
	if offsetSeconds > e.lastAt {
		e.lastAt = offsetSeconds
	}
}

// Tick folds the period's observations into the running estimates.
func (c *Controller) Tick() {
	for i := range c.stats {
		e := &c.stats[i]
		if e.requested > 0 {
			// Service rate: only neighbours we exercised this period carry
			// signal. Requested but nothing came: the supplier failed us.
			cur := e.service
			if !e.hasService {
				cur = c.prior
			}
			var obs float64
			if e.delivered > 0 {
				window := e.lastAt
				if window < minObservationWindow {
					window = minObservationWindow
				}
				obs = float64(e.delivered) / window
			}
			next := (1-c.alpha)*cur + c.alpha*obs
			if next < serviceFloor {
				next = serviceFloor
			}
			e.service = next
			e.hasService = true
		} else if e.hasService && e.delivered == 0 {
			// Idle neighbours drift back toward the prior so they get
			// retried.
			e.service += 0.1 * (c.prior - e.service)
		}
		// Long-run supply decays for everyone and credits actual
		// deliveries (a supply estimate born this period starts at the
		// credit, undecayed, exactly as the retired map's two loops left
		// it).
		if e.hasSupply {
			e.supply = (1 - c.alpha) * e.supply
		}
		if e.delivered > 0 {
			e.supply += c.alpha * float64(e.delivered)
			e.hasSupply = true
		}
		e.requested, e.delivered, e.lastAt = 0, 0, 0
	}
}

// Rate returns the estimated service rate from neighbour id in segments
// per second; unknown neighbours get the optimistic prior.
func (c *Controller) Rate(id int) float64 {
	i := c.find(id)
	if i < len(c.stats) && c.stats[i].id == id && c.stats[i].hasService {
		return c.stats[i].service
	}
	return c.prior
}

// Supply returns the long-run per-period supply estimate for id (0 for
// unknown neighbours).
func (c *Controller) Supply(id int) float64 {
	i := c.find(id)
	if i < len(c.stats) && c.stats[i].id == id {
		return c.stats[i].supply
	}
	return 0
}

// Known reports whether the controller has ever exercised neighbour id.
func (c *Controller) Known(id int) bool {
	i := c.find(id)
	return i < len(c.stats) && c.stats[i].id == id && c.stats[i].hasService
}

// Forget removes all state about a departed neighbour.
func (c *Controller) Forget(id int) {
	i := c.find(id)
	if i < len(c.stats) && c.stats[i].id == id {
		c.stats = append(c.stats[:i], c.stats[i+1:]...)
	}
}
