package bandwidth

import (
	"math"
	"testing"
	"testing/quick"

	"continustreaming/internal/sim"
)

func TestDefaultProfileValid(t *testing.T) {
	p := DefaultProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.MinIn != 10 || p.MaxIn != 33 || p.MeanIn != 15 || p.SourceOut != 100 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{},
		{MeanIn: 15, MeanOut: 15, SourceOut: 0},
		{MeanIn: 15, MeanOut: 15, SourceOut: 100, MinIn: 0, MaxIn: 10, MinOut: 10, MaxOut: 20},
		{MeanIn: 15, MeanOut: 15, SourceOut: 100, MinIn: 20, MaxIn: 10, MinOut: 10, MaxOut: 20},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, p)
		}
	}
}

func TestHomogeneousDraw(t *testing.T) {
	p := HomogeneousProfile()
	rng := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		r := p.Draw(rng)
		if r.In != 15 || r.Out != 15 {
			t.Fatalf("homogeneous draw = %+v", r)
		}
	}
}

func TestHeterogeneousDrawMeanAndBounds(t *testing.T) {
	p := DefaultProfile()
	rng := sim.NewRNG(2)
	sumIn, sumOut := 0, 0
	const n = 200000
	for i := 0; i < n; i++ {
		r := p.Draw(rng)
		if r.In < 10 || r.In > 33 || r.Out < 10 || r.Out > 33 {
			t.Fatalf("draw out of range: %+v", r)
		}
		sumIn += r.In
		sumOut += r.Out
	}
	meanIn := float64(sumIn) / n
	meanOut := float64(sumOut) / n
	// §5.2: "let the average inbound rate be ... 450 Kbps, i.e. ... I = 15
	// in average".
	if math.Abs(meanIn-15) > 0.3 {
		t.Fatalf("mean inbound = %.2f, want ~15", meanIn)
	}
	if math.Abs(meanOut-15) > 0.3 {
		t.Fatalf("mean outbound = %.2f, want ~15", meanOut)
	}
}

func TestSourceRates(t *testing.T) {
	p := DefaultProfile()
	s := p.Source()
	if s.In != 0 || s.Out != 100 {
		t.Fatalf("source rates = %+v", s)
	}
}

func TestDrawSkewedDegenerateRanges(t *testing.T) {
	rng := sim.NewRNG(3)
	if v := drawSkewed(rng, 5, 10, 5); v != 5 {
		t.Fatalf("mean at min should pin to min, got %d", v)
	}
	for i := 0; i < 50; i++ {
		v := drawSkewed(rng, 5, 10, 12) // mean above max: plain uniform
		if v < 5 || v > 10 {
			t.Fatalf("out of range %d", v)
		}
	}
}

func TestBudgetSpend(t *testing.T) {
	b := NewBudget(15, sim.Second)
	if b.Capacity() != 15 || b.Remaining() != 15 {
		t.Fatalf("capacity = %d", b.Capacity())
	}
	if !b.Spend(10) || b.Remaining() != 5 {
		t.Fatal("spend 10 failed")
	}
	if b.Spend(6) {
		t.Fatal("overspend allowed")
	}
	if !b.Spend(5) || b.Remaining() != 0 {
		t.Fatal("exact spend failed")
	}
	if b.Spend(-1) {
		t.Fatal("negative spend allowed")
	}
	b.Reset()
	if b.Remaining() != 15 {
		t.Fatal("reset failed")
	}
}

func TestBudgetSubSecondTau(t *testing.T) {
	b := NewBudget(10, 500*sim.Millisecond)
	if b.Capacity() != 5 {
		t.Fatalf("capacity = %d, want 5", b.Capacity())
	}
	zero := NewBudget(0, sim.Second)
	if zero.Capacity() != 0 {
		t.Fatal("zero rate should have zero capacity")
	}
}

func TestBudgetNeverNegativeQuick(t *testing.T) {
	f := func(rate uint8, spends []uint8) bool {
		b := NewBudget(int(rate), sim.Second)
		for _, s := range spends {
			b.Spend(int(s))
			if b.Remaining() < 0 || b.Remaining() > b.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControllerPriorAndServiceRate(t *testing.T) {
	c := NewController(0.5, 10)
	if got := c.Rate(7); got != 10 {
		t.Fatalf("prior = %v", got)
	}
	// Two segments requested and delivered within 400ms: a 5/s supplier,
	// NOT a 2-per-period one — the timestamp-based estimate must converge
	// near 5, which is what keeps the scheduler from starving itself.
	for i := 0; i < 30; i++ {
		c.NoteRequested(7, 2)
		c.ObserveDelivery(7, 0.2)
		c.ObserveDelivery(7, 0.4)
		c.Tick()
	}
	if got := c.Rate(7); math.Abs(got-5) > 0.5 {
		t.Fatalf("converged service rate = %v, want ~5", got)
	}
	if !c.Known(7) || c.Known(8) {
		t.Fatal("Known wrong")
	}
}

func TestControllerFailedRequestsDecay(t *testing.T) {
	c := NewController(0.5, 10)
	// Repeatedly request with zero deliveries: the supplier is failing us
	// and the estimate must fall toward the floor.
	for i := 0; i < 20; i++ {
		c.NoteRequested(3, 4)
		c.Tick()
	}
	if got := c.Rate(3); got > 0.1 {
		t.Fatalf("failing supplier rate = %v, want near floor", got)
	}
	if got := c.Rate(3); got < 0.05 {
		t.Fatalf("rate fell below floor: %v", got)
	}
}

func TestControllerIdleNeighboursRecover(t *testing.T) {
	c := NewController(0.5, 10)
	for i := 0; i < 20; i++ {
		c.NoteRequested(3, 4)
		c.Tick()
	}
	low := c.Rate(3)
	// Idle periods (no requests at all) drift the estimate back toward the
	// prior so the neighbour is eventually retried.
	for i := 0; i < 40; i++ {
		c.Tick()
	}
	if got := c.Rate(3); got <= low || got < 5 {
		t.Fatalf("idle neighbour did not recover: %v -> %v", low, got)
	}
}

func TestControllerSupplyTracksDeliveries(t *testing.T) {
	c := NewController(0.5, 10)
	if c.Supply(4) != 0 {
		t.Fatal("unknown supply nonzero")
	}
	for i := 0; i < 20; i++ {
		c.NoteRequested(4, 3)
		c.ObserveDelivery(4, 0.3)
		c.ObserveDelivery(4, 0.6)
		c.ObserveDelivery(4, 0.9)
		c.Tick()
	}
	if got := c.Supply(4); math.Abs(got-3) > 0.3 {
		t.Fatalf("supply = %v, want ~3/period", got)
	}
	// Silence decays supply toward zero — the "supplied little data"
	// replacement signal.
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if got := c.Supply(4); got > 0.1 {
		t.Fatalf("silent supply = %v, want ~0", got)
	}
}

func TestControllerForget(t *testing.T) {
	c := NewController(0.5, 10)
	c.NoteRequested(1, 1)
	c.ObserveDelivery(1, 0.5)
	c.Tick()
	c.Forget(1)
	if c.Known(1) {
		t.Fatal("Forget did not remove estimate")
	}
	if got := c.Rate(1); got != 10 {
		t.Fatalf("forgotten neighbour rate = %v, want prior", got)
	}
	if c.Supply(1) != 0 {
		t.Fatal("forgotten supply nonzero")
	}
}

func TestControllerClampsBadConstruction(t *testing.T) {
	c := NewController(-1, -5)
	c.NoteRequested(1, 1)
	c.ObserveDelivery(1, 0.1)
	c.Tick()
	if c.Rate(1) <= 0 {
		t.Fatal("clamped controller produced non-positive rate")
	}
}

func TestControllerFastBurstHighRate(t *testing.T) {
	c := NewController(0.5, 10)
	// Five segments inside 100ms: observation window floor caps the rate
	// at 50/s for this burst.
	c.NoteRequested(2, 5)
	for i := 0; i < 5; i++ {
		c.ObserveDelivery(2, 0.05)
	}
	c.Tick()
	if got := c.Rate(2); got < 10 || got > 50 {
		t.Fatalf("burst rate = %v", got)
	}
}

func TestPerSegment(t *testing.T) {
	if got := PerSegment(10, sim.Second); got != sim.Second/10 {
		t.Fatalf("PerSegment(10, 1s) = %v", got)
	}
	if got := PerSegment(0, sim.Second); got != sim.Second {
		t.Fatalf("rate 0 must cost the whole period, got %v", got)
	}
	// Floored at the 1 ms simulation resolution.
	if got := PerSegment(int(2*sim.Second), sim.Second); got != 1 {
		t.Fatalf("sub-millisecond transfer not floored: %v", got)
	}
}
