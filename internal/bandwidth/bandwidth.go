// Package bandwidth models node network capacity the way the paper's
// simulation does (§5.2): each node has an inbound rate I and an outbound
// rate O measured in segments per second (a 30 Kb segment at 300 Kbps
// stream rate means I = 10 is exactly playback speed). Rates are drawn
// uniformly so the population mean matches the paper's 450 Kbps ≈ 15
// segments/s, the source gets I = 0 and a large O, and every scheduling
// period each node spends from integer segment budgets.
//
// The package also provides the Rate Controller of Figure 1: a per-
// neighbour receive-rate estimator based on observed deliveries, which the
// data scheduler uses as R_ij, and from which suppliers' expected transfer
// times 1/R are computed.
package bandwidth

import (
	"fmt"

	"continustreaming/internal/sim"
)

// Rates describes one node's access capacity in segments per second.
type Rates struct {
	In  int // inbound segments/s (I in the paper)
	Out int // outbound segments/s
}

// Profile configures how rates are assigned across a population.
type Profile struct {
	// Homogeneous forces every node to exactly MeanIn/MeanOut.
	Homogeneous bool
	// MinIn/MaxIn bound the uniform inbound draw; the paper uses 10..33
	// ("from 300 Kbps to 1 Mbps") with mean 15 (450 Kbps).
	MinIn, MaxIn int
	// MeanIn is used when Homogeneous (and for the paper's λ).
	MeanIn int
	// MinOut/MaxOut/MeanOut mirror the inbound fields; §5.2: "The
	// arrangement of outbound rate is alike."
	MinOut, MaxOut int
	MeanOut        int
	// SourceOut is the source's outbound rate; §5.2 uses 100.
	SourceOut int
}

// DefaultProfile returns the paper's heterogeneous arrangement.
func DefaultProfile() Profile {
	return Profile{
		MinIn: 10, MaxIn: 33, MeanIn: 15,
		MinOut: 10, MaxOut: 33, MeanOut: 15,
		SourceOut: 100,
	}
}

// HomogeneousProfile returns the paper's homogeneous arrangement (used in
// the §5.1 theory-versus-simulation table).
func HomogeneousProfile() Profile {
	p := DefaultProfile()
	p.Homogeneous = true
	return p
}

// Validate reports an error for non-physical profiles.
func (p Profile) Validate() error {
	if p.MeanIn <= 0 || p.MeanOut <= 0 || p.SourceOut <= 0 {
		return fmt.Errorf("bandwidth: means and source rate must be positive: %+v", p)
	}
	if !p.Homogeneous {
		if p.MinIn <= 0 || p.MaxIn < p.MinIn || p.MinOut <= 0 || p.MaxOut < p.MinOut {
			return fmt.Errorf("bandwidth: invalid uniform bounds: %+v", p)
		}
	}
	return nil
}

// Draw assigns rates to an ordinary node. Heterogeneous draws skew toward
// the low end (two-point mixture of the uniform's halves) so that the mean
// lands near MeanIn even though the paper's range 10..33 has midpoint 21.5;
// most residential nodes sat near the bottom of the range in 2001-era
// traces, which is also what makes I average 15.
func (p Profile) Draw(rng *sim.RNG) Rates {
	if p.Homogeneous {
		return Rates{In: p.MeanIn, Out: p.MeanOut}
	}
	return Rates{
		In:  drawSkewed(rng, p.MinIn, p.MaxIn, p.MeanIn),
		Out: drawSkewed(rng, p.MinOut, p.MaxOut, p.MeanOut),
	}
}

// Source returns the media source's rates: zero inbound, large outbound.
func (p Profile) Source() Rates {
	return Rates{In: 0, Out: p.SourceOut}
}

// drawSkewed samples an integer in [min, max] whose expectation is mean by
// mixing a uniform draw over the full range with a uniform draw over the
// lower sub-range [min, mean]. Solving E = w·(min+mean)/2 + (1-w)·(min+max)/2
// for the mixture weight w gives the exact expectation when feasible.
func drawSkewed(rng *sim.RNG, min, max, mean int) int {
	if mean <= min {
		return min
	}
	if mean >= max {
		return rng.IntRange(min, max)
	}
	full := float64(min+max) / 2
	low := float64(min+mean) / 2
	w := 0.0
	if full != low {
		w = (full - float64(mean)) / (full - low)
	}
	if w < 0 {
		w = 0
	}
	if w > 1 {
		w = 1
	}
	if rng.Bool(w) {
		return rng.IntRange(min, mean)
	}
	return rng.IntRange(min, max)
}

// PerSegment returns the wire time of one segment for a sender
// transmitting rate segments per period tau, floored at the simulation's
// 1 ms resolution. A non-positive rate yields the whole period — the
// "about to be unobtainable" limit the scheduler's urgency term also
// assumes. The serve and pre-fetch paths both derive transfer
// completions from it, so queueing-delay math stays consistent across
// the two retrieval channels.
func PerSegment(rate int, tau sim.Time) sim.Time {
	if rate <= 0 {
		return tau
	}
	t := tau / sim.Time(rate)
	if t < 1 {
		t = 1
	}
	return t
}

// Budget tracks integer segment credit for one node over one scheduling
// period. Spend returns false once the credit is exhausted.
type Budget struct {
	capacity int
	used     int
}

// NewBudget returns a budget with the given per-period capacity, derived
// from a rate: capacity = rate · tau.
func NewBudget(rate int, tau sim.Time) Budget {
	c := int(int64(rate) * int64(tau) / int64(sim.Second))
	if c < 0 {
		c = 0
	}
	return Budget{capacity: c}
}

// Capacity returns the total credit for the period.
func (b *Budget) Capacity() int { return b.capacity }

// Remaining returns the unspent credit.
func (b *Budget) Remaining() int { return b.capacity - b.used }

// Spend consumes n credits if available and reports success.
func (b *Budget) Spend(n int) bool {
	if n < 0 || b.used+n > b.capacity {
		return false
	}
	b.used += n
	return true
}

// Reset restores the full capacity for a new period.
func (b *Budget) Reset() { b.used = 0 }
