// Package topology synthesizes the "real-trace overlay topologies" the
// paper's evaluation runs on (§5.2). The original data — 30 Gnutella crawls
// collected between Dec 2000 and Jun 2001 from dss.clip2.com — has been
// offline for two decades, so this package generates topologies with the
// same consumed properties instead:
//
//   - each node carries an ID, an IPv4 address, and a ping time measured
//     from a central vantage point (the only trace fields the paper uses);
//   - graph sizes span 100 to 10000 nodes with average degree below 1 up to
//     3.5 and a heavy-tailed degree distribution, like the crawls;
//   - the paper then *augments* the sparse trace graph with random edges
//     until every node has M connected neighbours, which Augment reproduces.
//
// The pairwise latency model also follows §5.2: latency(u,v) is the absolute
// difference of the two nodes' trace ping times, floored to a small positive
// value so co-located nodes are not free to reach.
package topology

import (
	"fmt"
	"sort"

	"continustreaming/internal/sim"
)

// Node is one trace record.
type Node struct {
	// ID is the node's overlay identifier, unique within the trace.
	ID int
	// IP is a synthesized IPv4 address in dotted-quad form.
	IP string
	// Ping is the node's measured round-trip time from the crawl's central
	// vantage point. The paper estimates one-way latency as RTT/2 and
	// derives pairwise latency from ping-time differences.
	Ping sim.Time
}

// Graph is an undirected overlay topology over a set of trace nodes.
// Adjacency is stored as sorted neighbour ID slices for deterministic
// iteration.
type Graph struct {
	Nodes []Node
	// Adj maps a node index (position in Nodes) to the indices of its
	// neighbours, sorted ascending.
	Adj [][]int
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Nodes) }

// AvgDegree returns the mean number of neighbours per node.
func (g *Graph) AvgDegree() float64 {
	if len(g.Nodes) == 0 {
		return 0
	}
	edges := 0
	for _, nb := range g.Adj {
		edges += len(nb)
	}
	return float64(edges) / float64(len(g.Nodes))
}

// HasEdge reports whether nodes at indices u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Adj[u]
	i := sort.SearchInts(nb, v)
	return i < len(nb) && nb[i] == v
}

// addEdge inserts the undirected edge (u, v), keeping adjacency sorted.
// It is a no-op for self-loops and existing edges.
func (g *Graph) addEdge(u, v int) bool {
	if u == v || g.HasEdge(u, v) {
		return false
	}
	g.Adj[u] = insertSorted(g.Adj[u], v)
	g.Adj[v] = insertSorted(g.Adj[v], u)
	return true
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Latency returns the simulated one-way latency between the nodes at
// indices u and v: |ping_u - ping_v|, floored at MinLatency (§5.2 notes the
// estimate "may be not accurate but reasonable").
func (g *Graph) Latency(u, v int) sim.Time {
	d := g.Nodes[u].Ping - g.Nodes[v].Ping
	if d < 0 {
		d = -d
	}
	if d < MinLatency {
		return MinLatency
	}
	return d
}

// MinLatency is the floor applied to pairwise latencies.
const MinLatency = 5 * sim.Millisecond

// Validate checks structural invariants: adjacency symmetry, sortedness,
// no self-loops, indices in range. It returns a descriptive error on the
// first violation.
func (g *Graph) Validate() error {
	if len(g.Adj) != len(g.Nodes) {
		return fmt.Errorf("topology: %d adjacency rows for %d nodes", len(g.Adj), len(g.Nodes))
	}
	for u, nb := range g.Adj {
		for i, v := range nb {
			if v < 0 || v >= len(g.Nodes) {
				return fmt.Errorf("topology: node %d has out-of-range neighbour %d", u, v)
			}
			if v == u {
				return fmt.Errorf("topology: node %d has a self-loop", u)
			}
			if i > 0 && nb[i-1] >= v {
				return fmt.Errorf("topology: node %d adjacency not strictly sorted", u)
			}
			if !g.HasEdge(v, u) {
				return fmt.Errorf("topology: edge (%d,%d) not symmetric", u, v)
			}
		}
	}
	return nil
}

// GenerateConfig controls synthetic trace generation.
type GenerateConfig struct {
	// N is the number of nodes (100..10000 in the paper's trace set).
	N int
	// AvgDegree is the target mean degree of the raw crawl graph; the
	// clip2 crawls ranged from under 1 to 3.5.
	AvgDegree float64
	// Seed selects the deterministic trace instance.
	Seed uint64
	// PingMin/PingMax bound the synthesized ping times. Defaults (when both
	// are zero) are 10ms..200ms, which yields pairwise latencies with the
	// paper's t_hop ≈ 50ms scale.
	PingMin, PingMax sim.Time
}

// Generate synthesizes a Gnutella-like trace graph. Edges follow a
// preferential-attachment sweep (heavy-tailed degrees, many leaf nodes)
// until the target average degree is met. The graph may be disconnected and
// some nodes may be isolated — exactly like the raw crawls, which is why the
// paper augments them before streaming (see Augment).
func Generate(cfg GenerateConfig) *Graph {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("topology: non-positive N %d", cfg.N))
	}
	if cfg.PingMin == 0 && cfg.PingMax == 0 {
		cfg.PingMin, cfg.PingMax = 10*sim.Millisecond, 200*sim.Millisecond
	}
	if cfg.PingMax < cfg.PingMin {
		cfg.PingMax = cfg.PingMin
	}
	rng := sim.DeriveRNG(cfg.Seed, 0x70706f)
	g := &Graph{
		Nodes: make([]Node, cfg.N),
		Adj:   make([][]int, cfg.N),
	}
	for i := range g.Nodes {
		g.Nodes[i] = Node{
			ID:   i,
			IP:   synthesizeIP(rng),
			Ping: cfg.PingMin + sim.Time(rng.Uint64n(uint64(cfg.PingMax-cfg.PingMin+1))),
		}
	}
	targetEdges := int(cfg.AvgDegree * float64(cfg.N) / 2)
	// Preferential attachment with a uniform escape hatch: endpoints are
	// drawn from a growing multiset of previous endpoints (rich get richer)
	// mixed with uniform draws, yielding the heavy tail plus leaves.
	endpoints := make([]int, 0, 2*targetEdges+2)
	edges := 0
	for attempts := 0; edges < targetEdges && attempts < 20*targetEdges+100; attempts++ {
		u := pickEndpoint(rng, endpoints, cfg.N)
		v := pickEndpoint(rng, endpoints, cfg.N)
		if g.addEdge(u, v) {
			edges++
			endpoints = append(endpoints, u, v)
		}
	}
	return g
}

func pickEndpoint(rng *sim.RNG, endpoints []int, n int) int {
	// 40% uniform keeps leaves appearing; 60% preferential grows hubs.
	if len(endpoints) == 0 || rng.Bool(0.4) {
		return rng.Intn(n)
	}
	return endpoints[rng.Intn(len(endpoints))]
}

func synthesizeIP(rng *sim.RNG) string {
	// Public-looking addresses; avoids 0/10/127/224+ first octets.
	first := 1 + rng.Intn(222)
	for first == 10 || first == 127 {
		first = 1 + rng.Intn(222)
	}
	return fmt.Sprintf("%d.%d.%d.%d", first, rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
}

// Augment adds random edges until every node has at least minDegree
// neighbours, reproducing §5.2: "Because the average node degree is too
// small for media streaming, we add random edges into the overlay to let
// every node hold M=5 connected neighbors." Peers are drawn uniformly;
// the function is deterministic for a fixed rng state.
func Augment(g *Graph, minDegree int, rng *sim.RNG) {
	if minDegree <= 0 || g.N() <= 1 {
		return
	}
	maxDeg := g.N() - 1
	want := minDegree
	if want > maxDeg {
		want = maxDeg
	}
	for u := 0; u < g.N(); u++ {
		guard := 0
		for len(g.Adj[u]) < want && guard < 100*g.N() {
			v := rng.Intn(g.N())
			g.addEdge(u, v)
			guard++
		}
	}
}
