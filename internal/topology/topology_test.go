package topology

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"continustreaming/internal/sim"
)

func TestGenerateBasics(t *testing.T) {
	g := Generate(GenerateConfig{N: 500, AvgDegree: 3.0, Seed: 1})
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := g.AvgDegree()
	if avg < 2.0 || avg > 3.5 {
		t.Fatalf("avg degree = %v, want near 3.0", avg)
	}
	for i, n := range g.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		if n.Ping < 10*sim.Millisecond || n.Ping > 200*sim.Millisecond {
			t.Fatalf("ping %v out of default range", n.Ping)
		}
		if !strings.Contains(n.IP, ".") {
			t.Fatalf("bad IP %q", n.IP)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenerateConfig{N: 300, AvgDegree: 2.0, Seed: 7})
	b := Generate(GenerateConfig{N: 300, AvgDegree: 2.0, Seed: 7})
	if a.AvgDegree() != b.AvgDegree() {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs", i)
		}
		if len(a.Adj[i]) != len(b.Adj[i]) {
			t.Fatalf("adjacency %d differs", i)
		}
		for j := range a.Adj[i] {
			if a.Adj[i][j] != b.Adj[i][j] {
				t.Fatalf("adjacency %d differs", i)
			}
		}
	}
	c := Generate(GenerateConfig{N: 300, AvgDegree: 2.0, Seed: 8})
	if c.AvgDegree() == a.AvgDegree() && sameAdj(a, c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func sameAdj(a, b *Graph) bool {
	for i := range a.Adj {
		if len(a.Adj[i]) != len(b.Adj[i]) {
			return false
		}
		for j := range a.Adj[i] {
			if a.Adj[i][j] != b.Adj[i][j] {
				return false
			}
		}
	}
	return true
}

func TestGenerateHeavyTail(t *testing.T) {
	g := Generate(GenerateConfig{N: 2000, AvgDegree: 3.0, Seed: 3})
	maxDeg, leaves := 0, 0
	for _, nb := range g.Adj {
		if len(nb) > maxDeg {
			maxDeg = len(nb)
		}
		if len(nb) <= 1 {
			leaves++
		}
	}
	// Gnutella-like: hubs far above the mean, plenty of leaves.
	if maxDeg < 10 {
		t.Fatalf("max degree %d too small for a heavy-tailed graph", maxDeg)
	}
	if leaves < 100 {
		t.Fatalf("only %d leaf/isolated nodes; expected many", leaves)
	}
}

func TestAugmentReachesMinDegree(t *testing.T) {
	g := Generate(GenerateConfig{N: 400, AvgDegree: 1.0, Seed: 5})
	rng := sim.DeriveRNG(5, 99)
	Augment(g, 5, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, nb := range g.Adj {
		if len(nb) < 5 {
			t.Fatalf("node %d degree %d < 5 after Augment", i, len(nb))
		}
	}
}

func TestAugmentTinyGraph(t *testing.T) {
	g := Generate(GenerateConfig{N: 3, AvgDegree: 0, Seed: 1})
	Augment(g, 5, sim.DeriveRNG(1, 1))
	// Only 2 possible neighbours exist.
	for i, nb := range g.Adj {
		if len(nb) != 2 {
			t.Fatalf("node %d degree %d, want 2", i, len(nb))
		}
	}
	Augment(g, 0, sim.DeriveRNG(1, 2)) // no-op
	g1 := Generate(GenerateConfig{N: 1, AvgDegree: 0, Seed: 1})
	Augment(g1, 5, sim.DeriveRNG(1, 3)) // no peers available, must not loop
	if len(g1.Adj[0]) != 0 {
		t.Fatal("single-node graph gained edges")
	}
}

func TestLatencyModel(t *testing.T) {
	g := &Graph{
		Nodes: []Node{
			{ID: 0, IP: "1.2.3.4", Ping: 50},
			{ID: 1, IP: "1.2.3.5", Ping: 120},
			{ID: 2, IP: "1.2.3.6", Ping: 52},
		},
		Adj: [][]int{{}, {}, {}},
	}
	if got := g.Latency(0, 1); got != 70 {
		t.Fatalf("Latency(0,1) = %v", got)
	}
	if got := g.Latency(1, 0); got != 70 {
		t.Fatalf("Latency not symmetric: %v", got)
	}
	// Near-identical pings floor at MinLatency.
	if got := g.Latency(0, 2); got != MinLatency {
		t.Fatalf("Latency(0,2) = %v, want floor %v", got, MinLatency)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Generate(GenerateConfig{N: 10, AvgDegree: 2, Seed: 2})
	g.Adj[0] = append(g.Adj[0], 0) // self-loop at the end may also break sortedness
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted self-loop")
	}
	g = Generate(GenerateConfig{N: 10, AvgDegree: 2, Seed: 2})
	g.Adj[3] = []int{4}
	g.Adj[4] = nil // asymmetric
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric edge")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g := Generate(GenerateConfig{N: 120, AvgDegree: 2.5, Seed: 11})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.AvgDegree() != g.AvgDegree() {
		t.Fatalf("round trip changed shape: %d/%v vs %d/%v", back.N(), back.AvgDegree(), g.N(), g.AvgDegree())
	}
	for i := range g.Nodes {
		if g.Nodes[i] != back.Nodes[i] {
			t.Fatalf("node %d differs after round trip", i)
		}
	}
	if !sameAdj(g, back) {
		t.Fatal("adjacency differs after round trip")
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"node 0\n",                             // wrong field count
		"node 0 1.2.3.4 abc\n",                 // bad ping
		"node 0 1.2.3.4 5\nnode 0 1.1.1.1 5\n", // duplicate
		"edge 0 1\n",                           // unknown node
		"node 0 1.2.3.4 5\nedge 0 0\n",         // self-loop
		"blah 1 2\n",                           // unknown directive
		"node x 1.2.3.4 5\n",                   // bad id
		"node 0 1.2.3.4 5\nedge 0\n",           // bad edge arity
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Fatalf("ReadTrace accepted %q", c)
		}
	}
}

func TestReadTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := "# hello\n\nnode 0 1.2.3.4 10\nnode 1 1.2.3.5 20\n# mid\nedge 0 1\n"
	g, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || !g.HasEdge(0, 1) {
		t.Fatalf("parsed graph wrong: n=%d", g.N())
	}
}

func TestDefaultRegistry(t *testing.T) {
	r := DefaultRegistry()
	if len(r.Entries) != 30 {
		t.Fatalf("registry has %d entries, want 30", len(r.Entries))
	}
	seen := map[string]bool{}
	for _, e := range r.Entries {
		if seen[e.Name] {
			t.Fatalf("duplicate trace name %q", e.Name)
		}
		seen[e.Name] = true
		if e.N < 100 || e.N > 10000 {
			t.Fatalf("trace %q size %d outside 100..10000", e.Name, e.N)
		}
		if e.AvgDegree <= 0 || e.AvgDegree > 3.5 {
			t.Fatalf("trace %q degree %v outside (0,3.5]", e.Name, e.AvgDegree)
		}
	}
	e, ok := r.Lookup(r.Entries[3].Name)
	if !ok || e != r.Entries[3] {
		t.Fatal("Lookup failed")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("Lookup found nonexistent trace")
	}
	g := r.Entries[0].Build()
	if g.N() != r.Entries[0].N {
		t.Fatalf("Build produced %d nodes", g.N())
	}
}

// Property: latency is symmetric, positive, and satisfies the ping-difference
// definition for arbitrary ping assignments.
func TestLatencyPropertiesQuick(t *testing.T) {
	f := func(pings []uint8) bool {
		if len(pings) < 2 {
			return true
		}
		g := &Graph{Nodes: make([]Node, len(pings)), Adj: make([][]int, len(pings))}
		for i, p := range pings {
			g.Nodes[i] = Node{ID: i, Ping: sim.Time(p)}
		}
		for i := 0; i < len(pings)-1; i++ {
			l := g.Latency(i, i+1)
			if l != g.Latency(i+1, i) || l < MinLatency {
				return false
			}
			d := g.Nodes[i].Ping - g.Nodes[i+1].Ping
			if d < 0 {
				d = -d
			}
			if d >= MinLatency && l != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
