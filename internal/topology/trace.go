package topology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"continustreaming/internal/sim"
)

// This file implements a plain-text trace format so that synthesized
// topologies can be written to disk, inspected, and read back — standing in
// for the downloadable crawl files the paper used. The format is
// line-oriented:
//
//	# comment
//	node <id> <ip> <ping-ms>
//	edge <id> <id>
//
// Node lines must precede edge lines that reference them.

// WriteTrace serializes g to w in the trace format.
func WriteTrace(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# synthetic gnutella-like trace: %d nodes, avg degree %.2f\n", g.N(), g.AvgDegree())
	for _, n := range g.Nodes {
		fmt.Fprintf(bw, "node %d %s %d\n", n.ID, n.IP, int64(n.Ping))
	}
	for u, nb := range g.Adj {
		for _, v := range nb {
			if u < v { // each undirected edge once
				fmt.Fprintf(bw, "edge %d %d\n", g.Nodes[u].ID, g.Nodes[v].ID)
			}
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace previously written by WriteTrace (or hand-
// authored in the same format). Unknown directives and malformed lines are
// errors; the resulting graph is validated before being returned.
func ReadTrace(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	g := &Graph{}
	index := map[int]int{} // trace ID -> node index
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "node":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topology: line %d: node needs 3 fields", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: bad node id: %v", lineNo, err)
			}
			ping, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil || ping < 0 {
				return nil, fmt.Errorf("topology: line %d: bad ping %q", lineNo, fields[3])
			}
			if _, dup := index[id]; dup {
				return nil, fmt.Errorf("topology: line %d: duplicate node %d", lineNo, id)
			}
			index[id] = len(g.Nodes)
			g.Nodes = append(g.Nodes, Node{ID: id, IP: fields[2], Ping: sim.Time(ping)})
			g.Adj = append(g.Adj, nil)
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("topology: line %d: edge needs 2 fields", lineNo)
			}
			a, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("topology: line %d: bad edge endpoints", lineNo)
			}
			ui, ok1 := index[a]
			vi, ok2 := index[b]
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("topology: line %d: edge references unknown node", lineNo)
			}
			if ui == vi {
				return nil, fmt.Errorf("topology: line %d: self-loop on node %d", lineNo, a)
			}
			g.addEdge(ui, vi)
		default:
			return nil, fmt.Errorf("topology: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: reading trace: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Registry describes the deterministic library of 30 synthetic traces that
// stands in for the paper's 30 clip2 crawls: sizes sweep 100..10000 and raw
// average degrees sweep the reported <1..3.5 range.
type Registry struct {
	Entries []RegistryEntry
}

// RegistryEntry names one reproducible trace.
type RegistryEntry struct {
	Name      string
	N         int
	AvgDegree float64
	Seed      uint64
}

// DefaultRegistry returns the standard 30-trace library. Entries are sorted
// by size then seed, and generation from an entry is fully deterministic.
func DefaultRegistry() Registry {
	sizes := []int{100, 200, 500, 1000, 2000, 4000, 8000, 10000}
	degrees := []float64{0.8, 1.5, 2.5, 3.5}
	var entries []RegistryEntry
	seed := uint64(0xc11b2)
	for _, n := range sizes {
		for _, d := range degrees {
			if len(entries) == 30 {
				break
			}
			entries = append(entries, RegistryEntry{
				Name:      fmt.Sprintf("trace-n%d-d%.1f", n, d),
				N:         n,
				AvgDegree: d,
				Seed:      seed,
			})
			seed = seed*6364136223846793005 + 1442695040888963407
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].N != entries[j].N {
			return entries[i].N < entries[j].N
		}
		return entries[i].AvgDegree < entries[j].AvgDegree
	})
	return Registry{Entries: entries}
}

// Build generates the trace for entry e.
func (e RegistryEntry) Build() *Graph {
	return Generate(GenerateConfig{N: e.N, AvgDegree: e.AvgDegree, Seed: e.Seed})
}

// Lookup returns the entry with the given name.
func (r Registry) Lookup(name string) (RegistryEntry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return RegistryEntry{}, false
}
