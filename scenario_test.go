package continustreaming

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestRunContextIsRun pins the wrapper contract: Run and an uncancelled
// RunContext are the same computation.
func TestRunContextIsRun(t *testing.T) {
	cfg := DefaultConfig(120)
	cfg.Seed = 7
	a, err := Run(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunContext diverged from Run on the same config")
	}
}

// TestRunContextCancelledUpFront returns immediately with no rounds run.
func TestRunContextCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, DefaultConfig(120), 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Continuity.Len() != 0 {
		t.Fatalf("cancelled-before-start run recorded %d rounds", res.Continuity.Len())
	}
}

// TestRunContextStopsAtRoundBoundary cancels mid-run from the OnRound
// hook and checks the partial result is a bit-identical prefix of the
// uninterrupted run.
func TestRunContextStopsAtRoundBoundary(t *testing.T) {
	cfg := DefaultConfig(120)
	cfg.Seed = 7
	full, err := Run(cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.OnRound = func(round int, _ Snapshot) {
		if round == 4 {
			cancel()
		}
	}
	part, err := RunContext(ctx, cfg, 12)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := part.Continuity.Len(); got != 5 {
		t.Fatalf("cancelled at round 4, ran %d rounds (want 5)", got)
	}
	for i := 0; i < part.Continuity.Len(); i++ {
		if part.Continuity.Values[i] != full.Continuity.Values[i] ||
			part.ControlOverhead.Values[i] != full.ControlOverhead.Values[i] {
			t.Fatalf("round %d of the partial run diverges from the full run", i)
		}
	}
}

// TestOnRoundMatchesResultSeries checks the hook fires once per round, in
// order, with values identical to the final Result — and that installing
// it does not perturb the simulation.
func TestOnRoundMatchesResultSeries(t *testing.T) {
	cfg := DefaultConfig(120)
	cfg.Seed = 3
	plain, err := Run(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	cfg.OnRound = func(round int, s Snapshot) {
		if round != s.Round {
			t.Fatalf("OnRound round arg %d != snapshot round %d", round, s.Round)
		}
		snaps = append(snaps, s)
	}
	hooked, err := Run(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 10 {
		t.Fatalf("OnRound fired %d times for 10 rounds", len(snaps))
	}
	for i, s := range snaps {
		if s.Round != i {
			t.Fatalf("snapshot %d has round %d", i, s.Round)
		}
		if s.Nodes <= 0 {
			t.Fatalf("round %d snapshot has %d playing nodes", i, s.Nodes)
		}
		if s.Continuity != hooked.Continuity.Values[i] ||
			s.ContinuityWarm != hooked.ContinuityWarm.Values[i] ||
			s.ControlOverhead != hooked.ControlOverhead.Values[i] ||
			s.PrefetchOverhead != hooked.PrefetchOverhead.Values[i] {
			t.Fatalf("snapshot %d disagrees with the result series", i)
		}
	}
	if !reflect.DeepEqual(plain.Continuity, hooked.Continuity) {
		t.Fatal("installing OnRound changed the simulation")
	}
}

// TestScenarioConstructorsSpanTheGrid pins each constructor's
// environment knobs.
func TestScenarioConstructorsSpanTheGrid(t *testing.T) {
	cases := []struct {
		name        string
		cfg         Config
		system      System
		dynamic     bool
		homogeneous bool
	}{
		{"hetstatic", ScenarioHetStatic(500), ContinuStreaming, false, false},
		{"hetdynamic", ScenarioHetDynamic(500), ContinuStreaming, true, false},
		{"homstatic", ScenarioHomStatic(500), ContinuStreaming, false, true},
		{"homdynamic", ScenarioHomDynamic(500), ContinuStreaming, true, true},
		{"flashcrowd", ScenarioFlashcrowd(500), ContinuStreaming, true, false},
		{"baseline", ScenarioBaseline(500), CoolStreaming, false, false},
	}
	for _, c := range cases {
		if c.cfg.Nodes != 500 {
			t.Errorf("%s: nodes = %d", c.name, c.cfg.Nodes)
		}
		if c.cfg.System != c.system || c.cfg.Dynamic != c.dynamic || c.cfg.Homogeneous != c.homogeneous {
			t.Errorf("%s: got (%v, dynamic=%v, homogeneous=%v)", c.name, c.cfg.System, c.cfg.Dynamic, c.cfg.Homogeneous)
		}
		if c.cfg.Seed == 0 {
			t.Errorf("%s: zero seed (would fall back to the core default implicitly)", c.name)
		}
		byName, err := ScenarioByName(c.name, 500)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !reflect.DeepEqual(byName, c.cfg) {
			t.Errorf("ScenarioByName(%q) disagrees with the constructor", c.name)
		}
	}
	if got := len(Scenarios()); got != len(cases) {
		t.Errorf("Scenarios() lists %d names, tests cover %d", got, len(cases))
	}
}

// TestScenarioByNameSuffixes covers the population-suffix grammar.
func TestScenarioByNameSuffixes(t *testing.T) {
	for _, c := range []struct {
		name string
		n    int
		want int
	}{
		{"flashcrowd100k", 0, 100_000},
		{"flashcrowd10k", 5, 10_000}, // suffix wins over the argument
		{"flashcrowd1m", 0, 1_000_000},
		{"hetdynamic8000", 0, 8000},
		{"HomStatic2K", 0, 2000}, // case-insensitive
		{"baseline", 777, 777},
		{"baseline", 0, 1000}, // bare name, default population
	} {
		cfg, err := ScenarioByName(c.name, c.n)
		if err != nil {
			t.Fatalf("ScenarioByName(%q, %d): %v", c.name, c.n, err)
		}
		if cfg.Nodes != c.want {
			t.Errorf("ScenarioByName(%q, %d).Nodes = %d, want %d", c.name, c.n, cfg.Nodes, c.want)
		}
	}
	for _, bad := range []string{"", "fig5", "flashcrowd-10k", "flashcrowd0k", "baselinex"} {
		if _, err := ScenarioByName(bad, 100); err == nil {
			t.Errorf("ScenarioByName(%q) accepted", bad)
		}
	}
}

// TestHomogeneousKnobChangesOutcome checks the new Config field reaches
// the bandwidth profile: homogeneous and heterogeneous runs differ.
func TestHomogeneousKnobChangesOutcome(t *testing.T) {
	het := ScenarioHetStatic(200)
	het.Seed = 9
	hom := het
	hom.Homogeneous = true
	a, err := Run(het, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hom, 12)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.ControlOverhead, b.ControlOverhead) && reflect.DeepEqual(a.Continuity, b.Continuity) {
		t.Fatal("homogeneous knob had no effect")
	}
}
