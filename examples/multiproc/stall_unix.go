//go:build unix

package main

import (
	"os"
	"syscall"
)

// The stall script freezes a livenode kernel-side: SIGSTOP suspends the
// whole process (its ticker keeps firing into the void), SIGCONT
// resumes it with its period counter behind real time.
var (
	sigStop os.Signal = syscall.SIGSTOP
	sigCont os.Signal = syscall.SIGCONT
)
