// Multiproc: the multi-process kill scenario over real UDP sockets —
// the paper's PlanetLab validation shape on one machine. The driver
// forks one livenode process per peer on loopback (the source doubling
// as rendezvous point), scripts an abrupt failure of a third of the
// audience mid-session, and asserts that the survivors' recovered tail
// plays continuously again: the same scenario the in-process livenet
// demo runs over channels, now with process boundaries, wire-encoded
// datagrams and gossip-routed membership between every pair of peers.
//
//	go run ./examples/multiproc
//	go run ./examples/multiproc -peers 8 -kill 3 -min-tail 0.9 -logdir multiproc-logs
//
// Exit status is non-zero when a survivor crashes or the mean recovered
// tail falls below -min-tail; per-peer logs land in -logdir either way.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"continustreaming/internal/livenet"
)

// nodeStats is livenode's JSON stats line — the exact shape it encodes,
// so the tail metric below is livenet's own TailContinuity, the same
// definition the in-process tests gate on.
type nodeStats struct {
	ID int
	livenet.Stats
}

// proc is one forked livenode: its command, its log sink, and the
// LISTEN/stats lines scraped off its stdout.
type proc struct {
	id     int
	doomed bool
	cmd    *exec.Cmd
	listen chan string
	stats  *nodeStats
	err    error
}

func main() {
	var (
		peers   = flag.Int("peers", 8, "audience size (the source is extra)")
		kill    = flag.Int("kill", 3, "how many peers die abruptly mid-session")
		killat  = flag.Int("killat", 30, "period at which the doomed peers drop off")
		periods = flag.Int("periods", 60, "session length in periods")
		period  = flag.Duration("period", 50*time.Millisecond, "scheduling period")
		seed    = flag.Uint64("seed", 1, "policy randomness seed")
		tail    = flag.Int("tail", 15, "periods of recovered tail to average")
		minTail = flag.Float64("min-tail", 0.9, "required mean survivor tail continuity")
		binPath = flag.String("livenode", "", "prebuilt livenode binary (empty = go build it)")
		logdir  = flag.String("logdir", "multiproc-logs", "per-peer log directory")
	)
	flag.Parse()
	if *kill >= *peers {
		fatalf("cannot kill %d of %d peers", *kill, *peers)
	}
	if err := os.MkdirAll(*logdir, 0o755); err != nil {
		fatalf("logdir: %v", err)
	}

	bin := *binPath
	if bin == "" {
		bin = filepath.Join(os.TempDir(), fmt.Sprintf("livenode-%d", os.Getpid()))
		build := exec.Command("go", "build", "-o", bin, "./cmd/livenode")
		build.Stdout, build.Stderr = os.Stdout, os.Stderr
		if err := build.Run(); err != nil {
			fatalf("building livenode: %v", err)
		}
		defer os.Remove(bin)
	}

	fmt.Printf("multiproc: %d peers + source over UDP loopback, killing %d at period %d/%d\n",
		*peers, *kill, *killat, *periods)

	var wg sync.WaitGroup
	start := func(id int, doomed bool, args ...string) *proc {
		base := []string{
			"-id", fmt.Sprint(id),
			"-peers", fmt.Sprint(*peers),
			"-periods", fmt.Sprint(*periods),
			"-period", period.String(),
			"-seed", fmt.Sprint(*seed),
		}
		p := &proc{id: id, doomed: doomed, listen: make(chan string, 1)}
		p.cmd = exec.Command(bin, append(base, args...)...)
		logf, err := os.Create(filepath.Join(*logdir, fmt.Sprintf("peer-%02d.log", id)))
		if err != nil {
			fatalf("log file: %v", err)
		}
		p.cmd.Stderr = logf
		stdout, err := p.cmd.StdoutPipe()
		if err != nil {
			fatalf("stdout pipe: %v", err)
		}
		if err := p.cmd.Start(); err != nil {
			fatalf("starting peer %d: %v", id, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer logf.Close()
			sc := bufio.NewScanner(stdout)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				line := sc.Text()
				fmt.Fprintln(logf, line)
				if addr, ok := strings.CutPrefix(line, "LISTEN="); ok {
					p.listen <- addr
				} else if strings.HasPrefix(line, "{") {
					var st nodeStats
					if err := json.Unmarshal([]byte(line), &st); err == nil {
						p.stats = &st
					}
				}
			}
			p.err = p.cmd.Wait()
		}()
		return p
	}

	src := start(0, false, "-source", "-listen", "127.0.0.1:0")
	var rp string
	select {
	case rp = <-src.listen:
	case <-time.After(10 * time.Second):
		fatalf("source never reported its address")
	}
	fmt.Printf("source/RP listening on %s\n", rp)

	procs := []*proc{src}
	for i := 1; i <= *peers; i++ {
		args := []string{"-bootstrap", rp, "-listen", "127.0.0.1:0"}
		doomed := i <= *kill
		if doomed {
			args = append(args, "-exitat", fmt.Sprint(*killat))
		}
		procs = append(procs, start(i, doomed, args...))
	}
	wg.Wait()

	failures := 0
	tailSum, survivors := 0.0, 0
	fmt.Printf("%-6s %-8s %-9s %-10s %-8s %s\n", "peer", "fate", "periods", "continuity", "tail", "detail")
	for _, p := range procs[1:] {
		fate := "survived"
		if p.doomed {
			fate = "killed"
		}
		switch {
		case p.doomed && p.err == nil && p.stats != nil:
			fmt.Printf("%-6d %-8s %-9s %-10s %-8s dropped off at period %d\n", p.id, fate, "-", "-", "-", *killat)
		case p.doomed:
			// A doomed peer still has to run cleanly up to its scripted
			// exit; a crash or bootstrap failure before that is a real
			// failure, not churn.
			failures++
			fmt.Printf("%-6d %-8s %-9s %-10s %-8s CRASHED before its scripted exit: %v\n", p.id, fate, "-", "-", "-", p.err)
		case p.err != nil || p.stats == nil:
			failures++
			fmt.Printf("%-6d %-8s %-9s %-10s %-8s CRASHED: %v\n", p.id, fate, "-", "-", "-", p.err)
		default:
			survivors++
			t := p.stats.TailContinuity(*tail)
			tailSum += t
			fmt.Printf("%-6d %-8s %-9d %-10.3f %-8.3f push=%d rescued=%d replaced=%d deadLinks=%d\n",
				p.id, fate, p.stats.Periods, p.stats.Continuity, t,
				p.stats.PushDelivered, p.stats.Rescued, p.stats.Replaced, p.stats.EndDeadLinks)
		}
	}
	if src.err != nil {
		failures++
		fmt.Printf("source CRASHED: %v\n", src.err)
	}
	if survivors == 0 {
		fatalf("no survivors reported stats")
	}
	meanTail := tailSum / float64(survivors)
	fmt.Printf("recovered-tail continuity (last %d periods, %d survivors): %.3f (require >= %.2f)\n",
		*tail, survivors, meanTail, *minTail)
	if failures > 0 || meanTail < *minTail {
		fmt.Printf("FAIL: %d crashes, tail %.3f\n", failures, meanTail)
		os.Exit(1)
	}
	fmt.Println("PASS")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "multiproc: "+format+"\n", args...)
	os.Exit(1)
}
