// Multiproc: multi-process live sessions over real UDP sockets — the
// paper's PlanetLab validation shape on one machine. The driver forks
// one livenode process per peer on loopback (the source doubling as
// rendezvous point), scripts churn, and asserts that the audience's
// recovered tail plays continuously: the same scenarios the in-process
// livenet demo runs over channels, now with process boundaries,
// wire-encoded datagrams and gossip-routed membership.
//
// Two modes. The flag mode runs the classic kill scenario:
//
//	go run ./examples/multiproc
//	go run ./examples/multiproc -peers 8 -kill 3 -min-tail 0.9 -logdir multiproc-logs
//
// The manifest mode runs a testground-style composition — named node
// groups with per-group traffic shaping, kill/join scripts and
// continuity floors (see livenet.Manifest and manifests/*.json):
//
//	go run ./examples/multiproc -manifest manifests/shaped.json
//
// Exit status is non-zero when a peer crashes or a group's mean
// recovered tail falls below its floor; per-peer logs land in -logdir
// either way, and the manifest mode prints the shaping seed so a
// failure replays exactly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"continustreaming/internal/livenet"
)

// nodeStats is livenode's JSON stats line — the exact shape it encodes,
// so the tail metric below is livenet's own TailContinuity, the same
// definition the in-process tests gate on.
type nodeStats struct {
	ID int
	livenet.Stats
}

// proc is one forked livenode: its command, its log sink, and the
// LISTEN/stats lines scraped off its stdout.
type proc struct {
	id     int
	group  string
	doomed bool
	cmd    *exec.Cmd
	listen chan string
	stats  *nodeStats
	err    error
}

// launcher forks livenode processes and scrapes their stdout; both
// driver modes share it.
type launcher struct {
	bin    string
	logdir string
	wg     sync.WaitGroup
}

func (l *launcher) start(id int, group string, doomed bool, args ...string) *proc {
	p := &proc{id: id, group: group, doomed: doomed, listen: make(chan string, 1)}
	p.cmd = exec.Command(l.bin, append([]string{"-id", fmt.Sprint(id)}, args...)...)
	logf, err := os.Create(filepath.Join(l.logdir, fmt.Sprintf("peer-%02d.log", id)))
	if err != nil {
		fatalf("log file: %v", err)
	}
	p.cmd.Stderr = logf
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		fatalf("stdout pipe: %v", err)
	}
	if err := p.cmd.Start(); err != nil {
		fatalf("starting peer %d: %v", id, err)
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		defer logf.Close()
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(logf, line)
			if addr, ok := strings.CutPrefix(line, "LISTEN="); ok {
				p.listen <- addr
			} else if strings.HasPrefix(line, "{") {
				var st nodeStats
				if err := json.Unmarshal([]byte(line), &st); err == nil {
					p.stats = &st
				}
			}
		}
		p.err = p.cmd.Wait()
	}()
	return p
}

// await blocks until the proc reports its bound address.
func (p *proc) await() string {
	select {
	case addr := <-p.listen:
		return addr
	case <-time.After(10 * time.Second):
		fatalf("peer %d never reported its address", p.id)
		return ""
	}
}

// buildLivenode resolves the livenode binary, building it when none was
// supplied. The returned cleanup removes a built binary.
func buildLivenode(binPath string) (string, func()) {
	if binPath != "" {
		return binPath, func() {}
	}
	bin := filepath.Join(os.TempDir(), fmt.Sprintf("livenode-%d", os.Getpid()))
	build := exec.Command("go", "build", "-o", bin, "./cmd/livenode")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		fatalf("building livenode: %v", err)
	}
	return bin, func() { os.Remove(bin) }
}

func main() {
	var (
		peers    = flag.Int("peers", 8, "audience size (the source is extra)")
		kill     = flag.Int("kill", 3, "how many peers die abruptly mid-session")
		killat   = flag.Int("killat", 30, "period at which the doomed peers drop off")
		periods  = flag.Int("periods", 60, "session length in periods")
		period   = flag.Duration("period", 50*time.Millisecond, "scheduling period")
		seed     = flag.Uint64("seed", 1, "policy randomness seed")
		tail     = flag.Int("tail", 15, "periods of recovered tail to average")
		minTail  = flag.Float64("min-tail", 0.9, "required mean survivor tail continuity")
		binPath  = flag.String("livenode", "", "prebuilt livenode binary (empty = go build it)")
		logdir   = flag.String("logdir", "multiproc-logs", "per-peer log directory")
		manifest = flag.String("manifest", "", "scenario manifest JSON (overrides the kill-scenario flags)")
	)
	flag.Parse()
	if err := os.MkdirAll(*logdir, 0o755); err != nil {
		fatalf("logdir: %v", err)
	}
	bin, cleanup := buildLivenode(*binPath)
	defer cleanup()
	l := &launcher{bin: bin, logdir: *logdir}

	if *manifest != "" {
		runManifest(l, *manifest, *tail)
		return
	}
	runKillScenario(l, *peers, *kill, *killat, *periods, *period, *seed, *tail, *minTail)
}

// runManifest launches a manifest composition and asserts every group's
// continuity floor.
func runManifest(l *launcher, path string, defTail int) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("manifest: %v", err)
	}
	m, err := livenet.ParseManifest(data)
	if err != nil {
		fatalf("%v", err)
	}
	dur, err := m.PeriodDuration()
	if err != nil {
		fatalf("%v", err)
	}
	nodes := m.Nodes()
	fmt.Printf("manifest %s: %d nodes in %d groups, %d periods of %v (seed=%d shapeseed=%d)\n",
		filepath.Base(path), len(nodes), len(m.Groups), m.Periods, dur, m.Seed, m.ShapeSeed)

	base := []string{
		"-peers", fmt.Sprint(m.Receivers()),
		"-periods", fmt.Sprint(m.Periods),
		"-period", dur.String(),
		"-seed", fmt.Sprint(m.Seed),
		"-retry", fmt.Sprint(m.Retry),
		// Boolean flags must be one token: "-resync true" would end
		// flag parsing at the bare word.
		fmt.Sprintf("-resync=%v", !m.NoResync),
	}
	if m.PushHops != nil {
		base = append(base, "-pushhops", fmt.Sprint(*m.PushHops))
	}
	nodeArgs := func(n livenet.ManifestNode) []string {
		args := append([]string{}, base...)
		if n.Shape != "" {
			args = append(args, "-shape", n.Shape, "-shapeseed", fmt.Sprint(m.ShapeSeed))
		}
		if n.ExitAt > 0 {
			args = append(args, "-exitat", fmt.Sprint(n.ExitAt))
		}
		return args
	}

	src := l.start(0, nodes[0].Group, false,
		append(nodeArgs(nodes[0]), "-source", "-listen", "127.0.0.1:0")...)
	rp := src.await()
	fmt.Printf("source/RP (group %q) listening on %s\n", nodes[0].Group, rp)

	procs := []*proc{src}
	var joiners []livenet.ManifestNode
	var stallWG sync.WaitGroup
	for _, n := range nodes[1:] {
		if n.JoinAt > 0 {
			joiners = append(joiners, n)
			continue
		}
		p := l.start(n.ID, n.Group, n.ExitAt > 0,
			append(nodeArgs(n), "-bootstrap", rp, "-listen", "127.0.0.1:0")...)
		procs = append(procs, p)
		if n.StallAt > 0 {
			// Scripted clock stall: freeze the process kernel-side for
			// StallFor periods, then resume it — its ticker misses those
			// periods, the drift the continuous re-sync re-anchors.
			stallWG.Add(1)
			go func(p *proc, at, dur time.Duration) {
				defer stallWG.Done()
				time.Sleep(at)
				fmt.Printf("stalling peer %d (group %q) for %v\n", p.id, p.group, dur)
				if err := p.cmd.Process.Signal(sigStop); err != nil {
					return // already exited; nothing to stall
				}
				time.Sleep(dur)
				p.cmd.Process.Signal(sigCont)
			}(p, time.Duration(n.StallAt)*dur, time.Duration(n.StallFor)*dur)
		}
	}
	// Late joiners enter through the rendezvous path mid-session; their
	// bootstrap handshake syncs them to the in-flight clock. Launch
	// order is by join period, timed off the driver's own clock (the
	// script needs only rough alignment — joining a period early or
	// late is still a mid-session join).
	sort.SliceStable(joiners, func(i, j int) bool { return joiners[i].JoinAt < joiners[j].JoinAt })
	t0 := time.Now()
	for _, n := range joiners {
		if wait := time.Duration(n.JoinAt)*dur - time.Since(t0); wait > 0 {
			time.Sleep(wait)
		}
		fmt.Printf("joining peer %d (group %q) at ~period %d\n", n.ID, n.Group, n.JoinAt)
		procs = append(procs, l.start(n.ID, n.Group, n.ExitAt > 0,
			append(nodeArgs(n), "-bootstrap", rp, "-listen", "127.0.0.1:0")...))
	}
	stallWG.Wait()
	l.wg.Wait()

	// Per-group verdicts: every process must exit the way its script
	// says, and each group with a floor must clear it.
	failures := 0
	fmt.Printf("%-12s %-6s %-8s %-9s %-10s %-8s %s\n", "group", "peer", "fate", "periods", "continuity", "tail", "detail")
	groupTails := make(map[string][]float64)
	for _, p := range procs {
		fate := "ran"
		switch {
		case p.doomed && p.err == nil && p.stats != nil:
			fmt.Printf("%-12s %-6d %-8s %-9s %-10s %-8s dropped off on script\n", p.group, p.id, "killed", "-", "-", "-")
			continue
		case p.err != nil || (p.stats == nil && p.id != 0):
			failures++
			fmt.Printf("%-12s %-6d %-8s %-9s %-10s %-8s CRASHED: %v\n", p.group, p.id, "crash", "-", "-", "-", p.err)
			continue
		case p.id == 0:
			fmt.Printf("%-12s %-6d %-8s %-9s %-10s %-8s served the stream\n", p.group, p.id, "source", "-", "-", "-")
			continue
		}
		t := p.stats.TailContinuity(tailForGroup(m, p.group, defTail))
		groupTails[p.group] = append(groupTails[p.group], t)
		fmt.Printf("%-12s %-6d %-8s %-9d %-10.3f %-8.3f push=%d rescued=%d resyncs=%d behind=%d shapeDrop=%d inboxDrop=%d\n",
			p.group, p.id, fate, p.stats.Periods, p.stats.Continuity, t,
			p.stats.PushDelivered, p.stats.Rescued, p.stats.Resyncs, p.stats.BehindPeriods,
			p.stats.ShapeDropped, p.stats.TransportDropped)
	}
	for _, g := range m.Groups {
		if g.Source || g.MinTail == 0 {
			continue
		}
		tails := groupTails[g.Name]
		if len(tails) == 0 {
			failures++
			fmt.Printf("group %q: no members reported stats (floor %.2f)\n", g.Name, g.MinTail)
			continue
		}
		mean := 0.0
		for _, t := range tails {
			mean += t
		}
		mean /= float64(len(tails))
		verdict := "ok"
		if mean < g.MinTail {
			verdict = "BELOW FLOOR"
			failures++
		}
		fmt.Printf("group %q: mean tail %.3f over %d members (floor %.2f, last %d periods) %s\n",
			g.Name, mean, len(tails), g.MinTail, g.TailFor(defTail), verdict)
	}
	if failures > 0 {
		// The shape seed is the replay handle: rerunning the manifest
		// with the same seeds replays the exact drop/delay sequence.
		fmt.Printf("FAIL: %d failures (replay: seed=%d shapeseed=%d)\n", failures, m.Seed, m.ShapeSeed)
		os.Exit(1)
	}
	fmt.Println("PASS")
}

// tailForGroup resolves a group's tail window by name.
func tailForGroup(m livenet.Manifest, name string, def int) int {
	for _, g := range m.Groups {
		if g.Name == name {
			return g.TailFor(def)
		}
	}
	return def
}

// runKillScenario is the classic flag-driven scenario: kill a third of
// the audience mid-session, assert the survivors' recovered tail.
func runKillScenario(l *launcher, peers, kill, killat, periods int, period time.Duration, seed uint64, tail int, minTail float64) {
	if kill >= peers {
		fatalf("cannot kill %d of %d peers", kill, peers)
	}
	fmt.Printf("multiproc: %d peers + source over UDP loopback, killing %d at period %d/%d\n",
		peers, kill, killat, periods)

	base := []string{
		"-peers", fmt.Sprint(peers),
		"-periods", fmt.Sprint(periods),
		"-period", period.String(),
		"-seed", fmt.Sprint(seed),
	}
	src := l.start(0, "source", false, append(base, "-source", "-listen", "127.0.0.1:0")...)
	rp := src.await()
	fmt.Printf("source/RP listening on %s\n", rp)

	procs := []*proc{src}
	for i := 1; i <= peers; i++ {
		args := append(append([]string{}, base...), "-bootstrap", rp, "-listen", "127.0.0.1:0")
		doomed := i <= kill
		if doomed {
			args = append(args, "-exitat", fmt.Sprint(killat))
		}
		procs = append(procs, l.start(i, "peers", doomed, args...))
	}
	l.wg.Wait()

	failures := 0
	tailSum, survivors := 0.0, 0
	fmt.Printf("%-6s %-8s %-9s %-10s %-8s %s\n", "peer", "fate", "periods", "continuity", "tail", "detail")
	for _, p := range procs[1:] {
		fate := "survived"
		if p.doomed {
			fate = "killed"
		}
		switch {
		case p.doomed && p.err == nil && p.stats != nil:
			fmt.Printf("%-6d %-8s %-9s %-10s %-8s dropped off at period %d\n", p.id, fate, "-", "-", "-", killat)
		case p.doomed:
			// A doomed peer still has to run cleanly up to its scripted
			// exit; a crash or bootstrap failure before that is a real
			// failure, not churn.
			failures++
			fmt.Printf("%-6d %-8s %-9s %-10s %-8s CRASHED before its scripted exit: %v\n", p.id, fate, "-", "-", "-", p.err)
		case p.err != nil || p.stats == nil:
			failures++
			fmt.Printf("%-6d %-8s %-9s %-10s %-8s CRASHED: %v\n", p.id, fate, "-", "-", "-", p.err)
		default:
			survivors++
			t := p.stats.TailContinuity(tail)
			tailSum += t
			fmt.Printf("%-6d %-8s %-9d %-10.3f %-8.3f push=%d rescued=%d replaced=%d deadLinks=%d\n",
				p.id, fate, p.stats.Periods, p.stats.Continuity, t,
				p.stats.PushDelivered, p.stats.Rescued, p.stats.Replaced, p.stats.EndDeadLinks)
		}
	}
	if src.err != nil {
		failures++
		fmt.Printf("source CRASHED: %v\n", src.err)
	}
	if survivors == 0 {
		fatalf("no survivors reported stats")
	}
	meanTail := tailSum / float64(survivors)
	fmt.Printf("recovered-tail continuity (last %d periods, %d survivors): %.3f (require >= %.2f)\n",
		tail, survivors, meanTail, minTail)
	if failures > 0 || meanTail < minTail {
		fmt.Printf("FAIL: %d crashes, tail %.3f\n", failures, meanTail)
		os.Exit(1)
	}
	fmt.Println("PASS")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "multiproc: "+format+"\n", args...)
	os.Exit(1)
}
