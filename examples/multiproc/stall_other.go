//go:build !unix

package main

import "os"

// No SIGSTOP/SIGCONT outside unix; stall scripts degrade to a no-op
// interrupt-free signal pair (Signal returns an error, the stall
// goroutine gives up).
var (
	sigStop os.Signal = os.Interrupt
	sigCont os.Signal = os.Interrupt
)
