// Flashcrowd10k: the flashcrowd workload pushed past the paper's largest
// evaluation (8000 nodes) to a 10,000-node overlay under 5%-per-round
// churn — the scale the sharded round pipeline exists for. Runs
// ContinuStreaming through the dynamic environment, prints the continuity
// track, and reports wall-clock throughput so the effect of -workers is
// visible directly. Results are bit-identical at any -workers setting;
// only the wall clock changes.
//
//	go run ./examples/flashcrowd10k [-nodes 10000] [-rounds 30] [-workers 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"continustreaming"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 10000, "overlay population")
		rounds  = flag.Int("rounds", 30, "scheduling periods to simulate")
		workers = flag.Int("workers", 0, "worker pool width (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := continustreaming.DefaultConfig(*nodes)
	cfg.Dynamic = true
	cfg.Seed = 7
	cfg.Workers = *workers
	begin := time.Now()
	res, err := continustreaming.Run(cfg, *rounds)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(begin)

	fmt.Printf("flash crowd: n=%d rounds=%d churn=5%%/round\n\n", *nodes, *rounds)
	fmt.Println("t(s)  continuity")
	for i, v := range res.Continuity.Values {
		fmt.Printf("%3d   %.3f\n", i, v)
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("\nstable continuity: %.3f\n", res.StableContinuity())
	fmt.Printf("wall clock: %v (%.2f rounds/s, workers=%d)\n",
		elapsed.Round(time.Millisecond), float64(*rounds)/elapsed.Seconds(), w)
}
