// Churntrace: trace-driven membership dynamics. The paper evaluates a
// uniform 5%-per-round churn; real audiences follow session-length
// distributions — memoryless zappers, a heavy-tailed loyal core, and
// day-night swings punctuated by correlated flash departures. This
// scenario runs ContinuStreaming through all three trace models plus the
// uniform baseline and prints the stable continuity each sustains.
//
//	go run ./examples/churntrace
package main

import (
	"fmt"
	"log"

	"continustreaming"
)

func main() {
	const nodes, rounds = 400, 40
	traces := []struct {
		name  string
		trace *continustreaming.ChurnTrace
	}{
		{"uniform 5%/round", nil},
		{"exponential (mean 20 rounds)", continustreaming.ExponentialChurn(rounds, 20)},
		{"pareto (alpha 2, min 6)", continustreaming.ParetoChurn(rounds, 2, 6)},
		{"diurnal + flash at t=20", continustreaming.DiurnalChurn(rounds, 24, 0.01, 0.08, 20, 0.3)},
	}
	fmt.Printf("ContinuStreaming, %d nodes, %d rounds:\n\n", nodes, rounds)
	for _, tc := range traces {
		cfg := continustreaming.DefaultConfig(nodes)
		cfg.Dynamic = true
		cfg.Churn = tc.trace
		cfg.Seed = 7
		res, err := continustreaming.Run(cfg, rounds)
		if err != nil {
			log.Fatal(err)
		}
		min := 1.0
		for _, v := range res.Continuity.Values {
			if v > 0 && v < min {
				min = v
			}
		}
		fmt.Printf("%-30s stable=%.3f worst-round=%.3f\n", tc.name, res.StableContinuity(), min)
	}
	fmt.Println("\nThe flash departure is the stress case: a third of the audience")
	fmt.Println("leaves in one scheduling period and the repair pipeline regrows")
	fmt.Println("the mesh while the DHT keeps the stragglers fed.")
}
