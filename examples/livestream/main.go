// Livestream: runs the protocol over real goroutine message passing (the
// livenet runtime) instead of the deterministic simulator — one goroutine
// per peer, channels as links, a wall-clock ticker as the scheduling
// period. This is the in-process stand-in for the paper's planned
// PlanetLab deployment.
//
//	go run ./examples/livestream
package main

import (
	"context"
	"fmt"
	"time"

	"continustreaming/internal/livenet"
)

func main() {
	cfg := livenet.DefaultConfig()
	cfg.Peers = 32
	cfg.Period = 25 * time.Millisecond
	cfg.Seed = 99

	fmt.Printf("streaming live: %d peers, M=%d, %v periods...\n", cfg.Peers, cfg.Neighbors, cfg.Period)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stats := livenet.Run(ctx, cfg, 60)
	fmt.Printf("periods run:       %d\n", stats.Periods)
	fmt.Printf("segments delivered: %d\n", stats.Delivered)
	fmt.Printf("play continuity:    %.3f\n", stats.Continuity)
}
