// Livestream: runs the protocol over real goroutine message passing (the
// livenet runtime) instead of the deterministic simulator — one goroutine
// per peer, channels as links, a wall-clock ticker as the scheduling
// period. This is the in-process stand-in for the paper's planned
// PlanetLab deployment, and since the livenet port it drives the same
// internal/protocol decision core as the simulator: fresh-segment push,
// supplier-side EDF serving with carry queues, mesh repair and DHT-backed
// rescue.
//
// The session is a kill-and-recover demo: a third of the audience drops
// dead mid-stream (abrupt failures — no goodbyes), a batch of newcomers
// joins through the rendezvous path, and the repair pipeline rewires the
// mesh while the rescue ring patches the urgent holes.
//
//	go run ./examples/livestream
package main

import (
	"context"
	"fmt"
	"time"

	"continustreaming/internal/livenet"
)

func main() {
	cfg := livenet.DefaultConfig()
	cfg.Peers = 32
	cfg.Period = 25 * time.Millisecond
	cfg.Seed = 99
	cfg.Churn = []livenet.ChurnEvent{
		{Period: 30, KillFraction: 0.33}, // a third of the audience dies
		{Period: 38, Join: 6},            // newcomers arrive mid-stream
	}

	fmt.Printf("streaming live: %d peers, M=%d, %v periods, kill 33%% at period 30...\n",
		cfg.Peers, cfg.Neighbors, cfg.Period)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stats := livenet.Run(ctx, cfg, 80)
	fmt.Printf("periods run:        %d\n", stats.Periods)
	fmt.Printf("segments delivered: %d (push %d, rescue %d, queue-served %d)\n",
		stats.Delivered, stats.PushDelivered, stats.Rescued, stats.QueueServed)
	fmt.Printf("churn:              killed %d, joined %d\n", stats.Killed, stats.Joined)
	fmt.Printf("mesh repair:        %d dead links dropped, %d low-supply swaps, %d dead links left\n",
		stats.DeadDropped, stats.Replaced, stats.EndDeadLinks)
	fmt.Printf("play continuity:    %.3f overall, %.3f in the recovered tail\n",
		stats.Continuity, stats.TailContinuity(15))
}
