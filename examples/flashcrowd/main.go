// Flashcrowd: the workload the paper's introduction motivates — a live
// event under heavy membership churn. Runs ContinuStreaming and the
// baseline through the dynamic environment (5% leaves + 5% joins per
// scheduling period) and prints the continuity track, showing how the
// DHT-assisted pre-fetch behaves when gossip dissemination is disrupted.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	"continustreaming"
)

func main() {
	const nodes, rounds = 400, 30
	results := map[continustreaming.System]continustreaming.Result{}
	for _, system := range []continustreaming.System{
		continustreaming.CoolStreaming,
		continustreaming.ContinuStreaming,
	} {
		cfg := continustreaming.DefaultConfig(nodes)
		cfg.System = system
		cfg.Dynamic = true
		cfg.Seed = 7
		res, err := continustreaming.Run(cfg, rounds)
		if err != nil {
			log.Fatal(err)
		}
		results[system] = res
	}
	fmt.Println("t(s)  CoolStreaming  ContinuStreaming")
	cool := results[continustreaming.CoolStreaming].Continuity
	cont := results[continustreaming.ContinuStreaming].Continuity
	for i := 0; i < cool.Len(); i++ {
		fmt.Printf("%3d   %.3f          %.3f\n", i, cool.Values[i], cont.Values[i])
	}
	fmt.Printf("\nstable: CoolStreaming=%.3f ContinuStreaming=%.3f (under 5%%/round churn)\n",
		results[continustreaming.CoolStreaming].StableContinuity(),
		results[continustreaming.ContinuStreaming].StableContinuity())
}
