// Quickstart: run ContinuStreaming and the CoolStreaming baseline on the
// same 300-node overlay and compare the paper's three metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"continustreaming"
)

func main() {
	const nodes, rounds = 300, 25
	for _, system := range []continustreaming.System{
		continustreaming.CoolStreaming,
		continustreaming.ContinuStreaming,
	} {
		cfg := continustreaming.DefaultConfig(nodes)
		cfg.System = system
		cfg.Seed = 42
		res, err := continustreaming.Run(cfg, rounds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s continuity=%.3f control-overhead=%.4f prefetch-overhead=%.4f\n",
			system, res.StableContinuity(), res.StableControlOverhead(), res.StablePrefetchOverhead())
	}
	pcOld, pcNew, err := continustreaming.TheoreticalContinuity(15, 10, 1, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theory (λ=15):     PC_old=%.4f PC_new=%.4f (paper: 0.8815 / 0.9989)\n", pcOld, pcNew)
}
