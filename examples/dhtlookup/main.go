// DHT lookup: exercises the structured half of the hybrid overlay on its
// own — the loosely-organised ring of §4.1. Builds an 8192-slot ring with
// 2000 members, stores segment backups under the paper's hash(id·i) rule,
// then routes lookups and reports hop counts against the appendix bound
// log N / log(4/3) ≈ 2.41·log₂N and the empirical log₂(n)/2.
//
//	go run ./examples/dhtlookup
package main

import (
	"fmt"

	"continustreaming/internal/dht"
	"continustreaming/internal/segment"
	"continustreaming/internal/sim"
	"continustreaming/internal/theory"
)

func main() {
	space := dht.NewSpace(8192)
	net := dht.NewNetwork(space)
	rng := sim.NewRNG(2024)
	for net.Size() < 2000 {
		net.Join(dht.ID(rng.Intn(space.N())), rng)
	}
	for _, id := range net.IDs() {
		net.FillTable(net.Table(id), rng)
	}

	// Store backups for 100 segments at their k=4 hashed owners.
	stores := map[dht.ID]*dht.Store{}
	for _, id := range net.IDs() {
		stores[id] = dht.NewStore()
	}
	const k = 4
	for seg := segment.ID(0); seg < 100; seg++ {
		for _, key := range dht.BackupKeys(space, seg, k) {
			if owner, ok := net.Owner(key); ok {
				stores[owner].Put(seg)
			}
		}
	}

	// Route lookups for every segment's first replica from random origins.
	totalHops, success, hits := 0, 0, 0
	const queries = 2000
	maxHops := 0
	for q := 0; q < queries; q++ {
		seg := segment.ID(q % 100)
		origin := net.IDs()[rng.Intn(net.Size())]
		res := net.Route(origin, dht.HashKey(space, seg, 1))
		if !res.Success {
			continue
		}
		success++
		totalHops += res.Hops()
		if res.Hops() > maxHops {
			maxHops = res.Hops()
		}
		if stores[res.Final].Has(seg) {
			hits++
		}
	}
	fmt.Printf("queries:          %d\n", queries)
	fmt.Printf("success rate:     %.3f\n", float64(success)/queries)
	fmt.Printf("backup hit rate:  %.3f (owner holds the stored segment)\n", float64(hits)/float64(success))
	fmt.Printf("avg hops:         %.2f (log2(n)/2 = %.2f)\n",
		float64(totalHops)/float64(success), theory.ExpectedRoutingHops(net.Size()))
	fmt.Printf("max hops:         %d (appendix bound %.1f)\n", maxHops, theory.RoutingHopBound(space.N()))
}
