package continustreaming

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Scenario constructors name the configurations the evaluation actually
// runs, replacing ad-hoc field poking after DefaultConfig. Each returns a
// plain Config — callers may still adjust knobs (Seed, Workers, PushHops)
// before Run/RunContext — and each is a pure function of n, so the same
// constructor always reproduces the same run.
//
// The four environment constructors span the §5.1 evaluation grid
// (bandwidth arrangement × membership):
//
//	ScenarioHetStatic   heterogeneous bandwidth, fixed membership
//	ScenarioHetDynamic  heterogeneous bandwidth, 5%/round churn
//	ScenarioHomStatic   homogeneous bandwidth, fixed membership
//	ScenarioHomDynamic  homogeneous bandwidth, 5%/round churn
//
// ScenarioFlashcrowd is the scale-out stress scenario (the dynamic
// heterogeneous environment at populations past the paper's 8000 — 10k,
// 100k, 1M — the workload the sharded round pipeline exists for), and
// ScenarioBaseline is the CoolStreaming comparison point.

// ScenarioHetStatic is the paper's default environment: heterogeneous
// bandwidth, fixed membership, the full ContinuStreaming system.
func ScenarioHetStatic(n int) Config {
	return Config{Nodes: n, System: ContinuStreaming, Seed: 1}
}

// ScenarioHetDynamic is the heterogeneous dynamic environment: 5% of the
// population leaves and rejoins every scheduling period.
func ScenarioHetDynamic(n int) Config {
	cfg := ScenarioHetStatic(n)
	cfg.Dynamic = true
	return cfg
}

// ScenarioHomStatic is the homogeneous static environment of the §5.1
// theory-versus-simulation table: every node gets the mean bandwidth.
func ScenarioHomStatic(n int) Config {
	cfg := ScenarioHetStatic(n)
	cfg.Homogeneous = true
	return cfg
}

// ScenarioHomDynamic is the homogeneous dynamic environment.
func ScenarioHomDynamic(n int) Config {
	cfg := ScenarioHomStatic(n)
	cfg.Dynamic = true
	return cfg
}

// ScenarioFlashcrowd is the scale-out stress scenario: the full system in
// the dynamic heterogeneous environment at populations past the paper's
// largest evaluation — the configuration behind the flashcrowd10k and
// flashcrowd100k runs. It is ScenarioHetDynamic under a name of its own
// because it is the scenario CI and the benchmarks pin.
func ScenarioFlashcrowd(n int) Config {
	return ScenarioHetDynamic(n)
}

// ScenarioBaseline is the CoolStreaming comparison point: the pull-only
// baseline the paper measures against, in the static environment.
func ScenarioBaseline(n int) Config {
	cfg := ScenarioHetStatic(n)
	cfg.System = CoolStreaming
	return cfg
}

// scenarioTable maps selector names to constructors — the single source
// both ScenarioByName and Scenarios read, so the help text can never
// drift from what actually resolves.
var scenarioTable = map[string]func(int) Config{
	"hetstatic":  ScenarioHetStatic,
	"hetdynamic": ScenarioHetDynamic,
	"homstatic":  ScenarioHomStatic,
	"homdynamic": ScenarioHomDynamic,
	"flashcrowd": ScenarioFlashcrowd,
	"baseline":   ScenarioBaseline,
}

// Scenarios lists the selector names ScenarioByName accepts, sorted.
func Scenarios() []string {
	names := make([]string, 0, len(scenarioTable))
	for name := range scenarioTable {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ScenarioByName resolves a scenario selector to its Config at n nodes.
// The name may carry a population suffix — "flashcrowd100k",
// "hetdynamic8000", "flashcrowd1m" — which wins over n; a bare name uses
// n, or the scenario default of 1000 nodes when n <= 0.
func ScenarioByName(name string, n int) (Config, error) {
	base := strings.ToLower(strings.TrimSpace(name))
	for prefix, ctor := range scenarioTable {
		// No table name is a prefix of another, so at most one entry can
		// match and the map's iteration order cannot change the result.
		if !strings.HasPrefix(base, prefix) {
			continue
		}
		suffix := base[len(prefix):]
		if suffix != "" {
			size, err := parsePopulation(suffix)
			if err != nil {
				return Config{}, fmt.Errorf("continustreaming: scenario %q: %v", name, err)
			}
			n = size
		}
		if n <= 0 {
			n = 1000
		}
		return ctor(n), nil
	}
	return Config{}, fmt.Errorf("continustreaming: unknown scenario %q (have %s)",
		name, strings.Join(Scenarios(), ", "))
}

// parsePopulation reads a population suffix: a plain integer, or one with
// a k (thousand) or m (million) multiplier, as in "100k" or "1m".
func parsePopulation(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1_000, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1_000_000, s[:len(s)-1]
	}
	v, err := strconv.Atoi(s)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad population suffix %q", s)
	}
	return v * mult, nil
}
